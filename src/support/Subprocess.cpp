//===- Subprocess.cpp - Supervised child-process helpers ------------------===//

#include "support/Subprocess.h"

#include "support/Io.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>

#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

namespace mcsafe {
namespace support {

namespace {

void applyLimit(int Resource, uint64_t Bytes) {
  if (Bytes == 0)
    return;
  struct rlimit RL;
  RL.rlim_cur = static_cast<rlim_t>(Bytes);
  RL.rlim_max = static_cast<rlim_t>(Bytes);
  // A failure here leaves the child merely ungoverned by the kernel —
  // the cooperative governor still applies — so don't refuse to serve.
  (void)::setrlimit(Resource, &RL);
}

void sleepMs(unsigned Ms) {
  struct timespec TS;
  TS.tv_sec = Ms / 1000;
  TS.tv_nsec = static_cast<long>(Ms % 1000) * 1000000L;
  (void)::nanosleep(&TS, nullptr);
}

} // namespace

ChildProcess spawnChildWithSocket(const ChildLimits &Limits,
                                  const std::vector<int> &ParentFds,
                                  const std::function<int(int)> &ChildMain,
                                  std::string &Error) {
  int SV[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, SV) != 0) {
    Error = std::string("socketpair: ") + std::strerror(errno);
    return {};
  }
  pid_t Pid = ::fork();
  if (Pid < 0) {
    Error = std::string("fork: ") + std::strerror(errno);
    closeFd(SV[0]);
    closeFd(SV[1]);
    return {};
  }
  if (Pid == 0) {
    closeFd(SV[0]);
    for (int Fd : ParentFds)
      if (Fd >= 0 && Fd != SV[1])
        closeFd(Fd);
    // The daemon's stop handlers must not run in a worker: a SIGTERM
    // meant to kill this child would otherwise "request server stop"
    // on the copied state and leave the child alive.
    (void)::signal(SIGTERM, SIG_DFL);
    (void)::signal(SIGINT, SIG_DFL);
    (void)::signal(SIGPIPE, SIG_IGN);
    applyLimit(RLIMIT_AS, Limits.AddressSpaceBytes);
    applyLimit(RLIMIT_CPU, Limits.CpuSeconds);
    int Code = 0;
    if (ChildMain)
      Code = ChildMain(SV[1]);
    ::_exit(Code & 0xff);
  }
  closeFd(SV[1]);
  ChildProcess C;
  C.Pid = Pid;
  C.Fd = SV[0];
  return C;
}

ReapStatus reapChild(pid_t Pid, int &StatusOut) {
  for (;;) {
    int Status = 0;
    pid_t R = ::waitpid(Pid, &Status, WNOHANG);
    if (R == Pid) {
      StatusOut = Status;
      return ReapStatus::Exited;
    }
    if (R == 0)
      return ReapStatus::Running;
    if (errno == EINTR)
      continue;
    return ReapStatus::Gone;
  }
}

std::string describeWaitStatus(int Status) {
  char Buf[96];
  if (WIFEXITED(Status)) {
    std::snprintf(Buf, sizeof(Buf), "exited with status %d",
                  WEXITSTATUS(Status));
    return Buf;
  }
  if (WIFSIGNALED(Status)) {
    int Sig = WTERMSIG(Status);
    const char *Name = nullptr;
    switch (Sig) {
    case SIGABRT:
      Name = "SIGABRT";
      break;
    case SIGSEGV:
      Name = "SIGSEGV";
      break;
    case SIGBUS:
      Name = "SIGBUS";
      break;
    case SIGILL:
      Name = "SIGILL";
      break;
    case SIGFPE:
      Name = "SIGFPE";
      break;
    case SIGKILL:
      Name = "SIGKILL";
      break;
    case SIGTERM:
      Name = "SIGTERM";
      break;
    case SIGXCPU:
      Name = "SIGXCPU";
      break;
    default:
      break;
    }
    if (Name)
      std::snprintf(Buf, sizeof(Buf), "killed by signal %d (%s)", Sig, Name);
    else
      std::snprintf(Buf, sizeof(Buf), "killed by signal %d", Sig);
    return Buf;
  }
  std::snprintf(Buf, sizeof(Buf), "wait status 0x%x", Status);
  return Buf;
}

bool exitedCleanly(int Status) {
  return WIFEXITED(Status) && WEXITSTATUS(Status) == 0;
}

int terminateChild(pid_t Pid, unsigned GraceMs) {
  if (Pid <= 0)
    return 0;
  (void)::kill(Pid, SIGTERM);
  // Poll in small steps: the common case (a worker parked in pause())
  // dies on the first SIGTERM and the escalation never fires.
  const unsigned StepMs = 5;
  for (unsigned Waited = 0; Waited < GraceMs; Waited += StepMs) {
    int Status = 0;
    ReapStatus R = reapChild(Pid, Status);
    if (R == ReapStatus::Exited)
      return Status;
    if (R == ReapStatus::Gone)
      return 0;
    sleepMs(StepMs);
  }
  (void)::kill(Pid, SIGKILL);
  for (;;) {
    int Status = 0;
    pid_t R = ::waitpid(Pid, &Status, 0);
    if (R == Pid)
      return Status;
    if (R < 0 && errno == EINTR)
      continue;
    return 0;
  }
}

} // namespace support
} // namespace mcsafe
