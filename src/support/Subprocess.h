//===- Subprocess.h - Supervised child-process helpers ----------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Primitives for running untrusted work in supervised child processes:
/// fork with a stream-socketpair channel, hard kernel resource limits
/// applied inside the child, non-blocking reaping, and a SIGTERM→SIGKILL
/// escalation that always ends with the child reaped.
///
/// The trust argument mirrors the paper's optimizer/verifier split: the
/// child may crash, spin, or exhaust memory in arbitrary ways; the parent
/// only ever observes "bytes on the socket", "EOF", or "a wait status",
/// each of which it converts into a structured verdict. Nothing a child
/// does can take the parent down.
///
/// Fork discipline: children are forked from a multithreaded daemon, so
/// the child begins life with only the forking thread. Everything the
/// child touches afterwards must either be data it owns (the copied
/// address space is private) or glibc facilities that re-arm their own
/// locks across fork (malloc does). The spawn path resets SIGTERM/SIGINT
/// to their default dispositions in the child so the parent's escalation
/// actually terminates it — the daemon's own handlers must not be
/// inherited.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_SUBPROCESS_H
#define MCSAFE_SUPPORT_SUBPROCESS_H

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include <sys/types.h>

namespace mcsafe {
namespace support {

/// Hard kernel limits applied inside a child before it serves anything.
/// Zero disables a limit. These back the PR 4 cooperative governor with
/// an enforceable boundary: a worker whose soft budgets fail to trip
/// still cannot take more than this from the machine.
struct ChildLimits {
  /// RLIMIT_AS in bytes. Note this bounds *address space*, so it must
  /// leave headroom for everything the child inherited at fork; it is
  /// incompatible with ASan/TSan shadow mappings.
  uint64_t AddressSpaceBytes = 0;
  /// RLIMIT_CPU in seconds, cumulative over the child's lifetime.
  uint64_t CpuSeconds = 0;
};

/// One spawned child and the parent's end of its socketpair.
struct ChildProcess {
  pid_t Pid = -1;
  int Fd = -1;
  bool valid() const { return Pid > 0; }
};

/// Forks a child connected to the parent by a SOCK_STREAM socketpair.
/// In the child: the parent's socket end and every fd in \p ParentFds
/// are closed (a long-lived worker holding a copied connection fd would
/// suppress the EOF clients rely on), \p Limits are applied, signal
/// dispositions the daemon installed are reset, and \p ChildMain runs
/// with the child's socket fd; its return value becomes the exit status
/// via _exit (no atexit handlers — the child shares the parent's
/// statics). Returns an invalid ChildProcess with \p Error set when the
/// socketpair or fork fails.
ChildProcess spawnChildWithSocket(const ChildLimits &Limits,
                                  const std::vector<int> &ParentFds,
                                  const std::function<int(int)> &ChildMain,
                                  std::string &Error);

/// Non-blocking reap of one child.
enum class ReapStatus : uint8_t {
  Running, ///< Still alive; \p StatusOut untouched.
  Exited,  ///< Reaped; \p StatusOut holds the raw wait status.
  Gone,    ///< waitpid failed (already reaped elsewhere / not a child).
};
ReapStatus reapChild(pid_t Pid, int &StatusOut);

/// "exited with status N" or "killed by signal N (NAME)".
std::string describeWaitStatus(int Status);

/// WIFEXITED with status 0 — a voluntary, clean exit (worker rotation),
/// as opposed to a crash or kill.
bool exitedCleanly(int Status);

/// SIGTERM, then up to \p GraceMs of polling for a voluntary exit, then
/// SIGKILL; blocks until the child is reaped either way. Returns the
/// final wait status (0 when the pid could not be waited on).
int terminateChild(pid_t Pid, unsigned GraceMs);

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_SUBPROCESS_H
