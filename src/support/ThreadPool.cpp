//===- ThreadPool.cpp -----------------------------------------------------===//

#include "support/ThreadPool.h"

#include "support/FaultInjection.h"

#include <algorithm>
#include <chrono>

using namespace mcsafe;
using namespace mcsafe::support;

namespace {

/// Which pool (if any) the current thread is a worker of, and its index.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local unsigned CurrentWorker = 0;

} // namespace

unsigned ThreadPool::hardwareConcurrency() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned WorkerCount) {
  WorkerCount = std::max(1u, WorkerCount);
  Workers.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Workers.push_back(std::make_unique<Worker>());
  Threads.reserve(WorkerCount);
  for (unsigned I = 0; I < WorkerCount; ++I)
    Threads.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(SleepM);
    Stop = true;
  }
  SleepCv.notify_all();
  for (std::thread &T : Threads)
    T.join();
}

void ThreadPool::submit(Task T) {
  unsigned Idx = CurrentPool == this
                     ? CurrentWorker
                     : NextWorker.fetch_add(1, std::memory_order_relaxed) %
                           Workers.size();
  {
    std::lock_guard<std::mutex> L(Workers[Idx]->M);
    Workers[Idx]->Q.push_back(std::move(T));
  }
  Queued.fetch_add(1, std::memory_order_release);
  StatSubmitted.fetch_add(1, std::memory_order_relaxed);
  SleepCv.notify_one();
}

bool ThreadPool::popTask(unsigned Preferred, Task &Out) {
  // Own deque first, newest task first (LIFO keeps the working set hot).
  {
    Worker &W = *Workers[Preferred];
    std::lock_guard<std::mutex> L(W.M);
    if (!W.Q.empty()) {
      Out = std::move(W.Q.back());
      W.Q.pop_back();
      Queued.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal the oldest task of another worker (FIFO steals take the work
  // least likely to be wanted by the victim next).
  for (size_t Off = 1; Off < Workers.size(); ++Off) {
    Worker &V = *Workers[(Preferred + Off) % Workers.size()];
    std::lock_guard<std::mutex> L(V.M);
    if (!V.Q.empty()) {
      Out = std::move(V.Q.front());
      V.Q.pop_front();
      Queued.fetch_sub(1, std::memory_order_relaxed);
      StatSteals.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

bool ThreadPool::tryRunOne() {
  Task T;
  unsigned Preferred =
      CurrentPool == this
          ? CurrentWorker
          : NextWorker.load(std::memory_order_relaxed) % Workers.size();
  if (!popTask(Preferred, T))
    return false;
  T();
  StatExecuted.fetch_add(1, std::memory_order_relaxed);
  return true;
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats S;
  S.Submitted = StatSubmitted.load(std::memory_order_relaxed);
  S.Executed = StatExecuted.load(std::memory_order_relaxed);
  S.Steals = StatSteals.load(std::memory_order_relaxed);
  S.IdleUs = StatIdleUs.load(std::memory_order_relaxed);
  return S;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentPool = this;
  CurrentWorker = Index;
  while (true) {
    Task T;
    while (popTask(Index, T)) {
      T();
      T = nullptr; // Release captures before sleeping.
      StatExecuted.fetch_add(1, std::memory_order_relaxed);
    }
    auto IdleStart = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> L(SleepM);
    SleepCv.wait(L, [this] {
      return Stop || Queued.load(std::memory_order_acquire) > 0;
    });
    StatIdleUs.fetch_add(
        static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - IdleStart)
                .count()),
        std::memory_order_relaxed);
    if (Stop && Queued.load(std::memory_order_acquire) == 0)
      return;
  }
}

void TaskGroup::spawn(ThreadPool::Task T) {
  // Injected spawn fault: degrade to running the task inline on the
  // caller, exactly the null-pool path. Correctness never depends on
  // where a group task runs.
  if (!Pool || faultPoint("pool/spawn")) {
    T();
    return;
  }
  {
    std::lock_guard<std::mutex> L(S->M);
    S->Q.push_back(std::move(T));
    ++S->Unfinished;
  }
  // The proxy owns a reference to the state, so a group task can still
  // find its queue even if the TaskGroup object is already gone.
  Pool->submit([St = S] { runOne(*St); });
}

bool TaskGroup::runOne(State &S) {
  ThreadPool::Task T;
  {
    std::lock_guard<std::mutex> L(S.M);
    if (S.Q.empty())
      return false;
    T = std::move(S.Q.front());
    S.Q.pop_front();
  }
  T();
  {
    std::lock_guard<std::mutex> L(S.M);
    if (--S.Unfinished == 0)
      S.Cv.notify_all();
  }
  return true;
}

void TaskGroup::wait() {
  if (!Pool || !S)
    return;
  // Help: drain the group's queue on this thread.
  while (runOne(*S))
    ;
  // Tasks stolen by workers may still be running; block for those.
  std::unique_lock<std::mutex> L(S->M);
  S->Cv.wait(L, [this] { return S->Unfinished == 0; });
}
