//===- ThreadPool.h - Work-stealing thread pool -----------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool driving the parallel verification
/// engine: corpus-level parallelism (each program checked on its own
/// worker) and VC-level parallelism (independent verification conditions
/// discharged concurrently inside one check).
///
/// Each worker owns a deque; it pops its own work LIFO (locality) and
/// steals FIFO from the other workers when its deque runs dry. Tasks are
/// grouped with TaskGroup, whose wait() *helps*: the waiting thread drains
/// the group's remaining tasks itself instead of blocking, so a pool task
/// that spawns and waits on a nested group can never deadlock the pool.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_THREADPOOL_H
#define MCSAFE_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mcsafe {
namespace support {

/// A fixed-size work-stealing thread pool.
class ThreadPool {
public:
  using Task = std::function<void()>;

  /// Spawns \p Workers worker threads (at least one).
  explicit ThreadPool(unsigned Workers);

  /// Drains all remaining tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned workerCount() const {
    return static_cast<unsigned>(Threads.size());
  }

  /// Enqueues a task. Called from a worker of this pool, the task goes to
  /// that worker's own deque (LIFO pop keeps it cache-hot); called from
  /// any other thread, deques are fed round-robin.
  void submit(Task T);

  /// Runs one pending task on the calling thread, if any is queued.
  /// Returns false when every deque was empty.
  bool tryRunOne();

  /// std::thread::hardware_concurrency with a floor of 1.
  static unsigned hardwareConcurrency();

  /// Pool activity since construction. Counters are relaxed atomics —
  /// snapshots taken while tasks are in flight are approximate; after a
  /// full drain they are exact.
  struct Stats {
    uint64_t Submitted = 0; ///< Tasks handed to submit().
    uint64_t Executed = 0;  ///< Tasks run by workers or tryRunOne().
    uint64_t Steals = 0;    ///< Pops that took another worker's task.
    uint64_t IdleUs = 0;    ///< Total worker time blocked on the sleep CV.
  };
  Stats stats() const;

private:
  struct Worker {
    std::mutex M;
    std::deque<Task> Q;
  };

  void workerLoop(unsigned Index);
  bool popTask(unsigned Preferred, Task &Out);

  std::vector<std::unique_ptr<Worker>> Workers;
  std::vector<std::thread> Threads;

  /// Tasks sitting in some deque (not yet started). Guarded writes happen
  /// under the owning deque's mutex; the sleep path re-checks under
  /// SleepM, so a submit can never be missed.
  std::atomic<uint64_t> Queued{0};
  std::mutex SleepM;
  std::condition_variable SleepCv;
  bool Stop = false; // Guarded by SleepM.
  std::atomic<unsigned> NextWorker{0};

  std::atomic<uint64_t> StatSubmitted{0};
  std::atomic<uint64_t> StatExecuted{0};
  std::atomic<uint64_t> StatSteals{0};
  std::atomic<uint64_t> StatIdleUs{0};
};

/// A batch of tasks whose completion can be awaited. wait() helps run the
/// group's own tasks on the calling thread, so waiting from inside a pool
/// task is deadlock-free. With a null pool, spawn() runs the task inline —
/// the serial (--jobs 1) path goes through the same code.
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool *Pool) : Pool(Pool) {
    if (Pool)
      S = std::make_shared<State>();
  }
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  /// Adds a task to the group (inline execution when the pool is null).
  void spawn(ThreadPool::Task T);

  /// Blocks until every spawned task has finished, executing queued group
  /// tasks on the calling thread while it waits.
  void wait();

private:
  struct State {
    std::mutex M;
    std::condition_variable Cv;
    std::deque<ThreadPool::Task> Q;
    uint64_t Unfinished = 0;
  };
  /// Runs one queued task of \p S; false when the queue was empty.
  static bool runOne(State &S);

  ThreadPool *Pool;
  std::shared_ptr<State> S; // Shared with in-flight proxy tasks.
};

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_THREADPOOL_H
