//===- Trace.cpp - Span-based execution tracer ----------------------------===//

#include "support/Trace.h"

#include <unordered_map>

namespace mcsafe {
namespace support {

std::atomic<Tracer *> Tracer::GlobalTracer{nullptr};

namespace {
// Map opaque std::thread::id values to small dense ints, per tracer
// lifetime. Thread-local cache keyed by tracer keeps record() at one
// hash lookup after the first span on a thread.
thread_local std::unordered_map<const Tracer *, uint32_t> CachedTids;
} // namespace

Tracer::Tracer() : Epoch(std::chrono::steady_clock::now()) {}

uint32_t Tracer::threadId() {
  auto It = CachedTids.find(this);
  if (It != CachedTids.end())
    return It->second;
  uint32_t Tid;
  {
    std::lock_guard<std::mutex> Lock(M);
    Tid = NextTid++;
  }
  CachedTids[this] = Tid;
  return Tid;
}

void Tracer::record(std::string_view Name, uint64_t StartUs, uint64_t DurUs,
                    std::string_view Arg) {
  uint32_t Tid = threadId();
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(
      {std::string(Name), std::string(Arg), StartUs, DurUs, Tid});
}

size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

namespace {
void jsonEscape(std::ostream &OS, std::string_view S) {
  OS << '"';
  for (char Ch : S) {
    switch (Ch) {
    case '"':
      OS << "\\\"";
      break;
    case '\\':
      OS << "\\\\";
      break;
    case '\n':
      OS << "\\n";
      break;
    default:
      if (static_cast<unsigned char>(Ch) < 0x20) {
        static const char Hex[] = "0123456789abcdef";
        OS << "\\u00" << Hex[(Ch >> 4) & 0xF] << Hex[Ch & 0xF];
      } else {
        OS << Ch;
      }
    }
  }
  OS << '"';
}
} // namespace

void Tracer::writeJson(std::ostream &OS) const {
  std::lock_guard<std::mutex> Lock(M);
  OS << "{\"traceEvents\": [";
  bool First = true;
  for (const Event &E : Events) {
    OS << (First ? "\n" : ",\n");
    First = false;
    OS << "  {\"name\": ";
    jsonEscape(OS, E.Name);
    OS << ", \"cat\": \"mcsafe\", \"ph\": \"X\", \"ts\": " << E.StartUs
       << ", \"dur\": " << E.DurUs << ", \"pid\": 1, \"tid\": " << E.Tid;
    if (!E.Arg.empty()) {
      OS << ", \"args\": {\"detail\": ";
      jsonEscape(OS, E.Arg);
      OS << "}";
    }
    OS << "}";
  }
  OS << "\n]}\n";
}

} // namespace support
} // namespace mcsafe
