//===- Trace.h - Span-based execution tracer --------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A low-overhead span tracer. Instrumented code opens RAII `TraceSpan`s
/// ("checker/typestate", "prover/omega"); when a `Tracer` is installed
/// the span records a complete event (name, thread, start, duration)
/// that `Tracer::writeJson` serializes in Chrome `trace_event` format —
/// load the file at chrome://tracing or https://ui.perfetto.dev.
///
/// When no tracer is installed (the default), constructing a span reads
/// one relaxed atomic and does nothing else: instrumentation can stay in
/// hot paths permanently. The installed tracer is a process-wide atomic
/// pointer rather than a per-component member because spans cross layers
/// (a prover span nests inside a checker phase span inside a pool task)
/// and threading a pointer through every signature would distort the
/// APIs the tracer is meant to observe.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_SUPPORT_TRACE_H
#define MCSAFE_SUPPORT_TRACE_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace mcsafe {
namespace support {

/// Collects spans from any thread; serializes them as Chrome trace JSON.
class Tracer {
public:
  Tracer();
  Tracer(const Tracer &) = delete;
  Tracer &operator=(const Tracer &) = delete;

  /// Records one complete span. Thread-safe.
  void record(std::string_view Name, uint64_t StartUs, uint64_t DurUs,
              std::string_view Arg);

  /// Microseconds since this tracer was constructed.
  uint64_t nowUs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - Epoch)
            .count());
  }

  /// Emits {"traceEvents": [...]} with "ph":"X" complete events.
  void writeJson(std::ostream &OS) const;

  /// The installed process-wide tracer, or null (tracing off).
  static Tracer *global() {
    return GlobalTracer.load(std::memory_order_acquire);
  }
  /// Installs (or, with null, removes) the process-wide tracer. Not
  /// synchronized against in-flight spans: install before instrumented
  /// work starts and remove after it drains.
  static void setGlobal(Tracer *T) {
    GlobalTracer.store(T, std::memory_order_release);
  }

  size_t eventCount() const;

private:
  struct Event {
    std::string Name;
    std::string Arg; ///< Optional free-form detail; empty = none.
    uint64_t StartUs;
    uint64_t DurUs;
    uint32_t Tid;
  };

  /// Small stable per-thread id for the "tid" field (thread::id values
  /// are opaque and ugly in the viewer).
  uint32_t threadId();

  static std::atomic<Tracer *> GlobalTracer;

  std::chrono::steady_clock::time_point Epoch;
  mutable std::mutex M;
  std::vector<Event> Events;
  uint32_t NextTid = 0;
};

/// RAII span: records [construction, destruction) on the global tracer.
/// `Name` must outlive the span (string literals in practice).
class TraceSpan {
public:
  explicit TraceSpan(std::string_view Name) : Name(Name) {
    T = Tracer::global();
    if (T)
      StartUs = T->nowUs();
  }
  TraceSpan(std::string_view Name, std::string_view Arg)
      : Name(Name), Arg(Arg) {
    T = Tracer::global();
    if (T)
      StartUs = T->nowUs();
  }
  ~TraceSpan() {
    if (T)
      T->record(Name, StartUs, T->nowUs() - StartUs, Arg);
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

private:
  Tracer *T;
  std::string_view Name;
  std::string_view Arg;
  uint64_t StartUs = 0;
};

} // namespace support
} // namespace mcsafe

#endif // MCSAFE_SUPPORT_TRACE_H
