//===- AbsLoc.cpp ---------------------------------------------------------===//

#include "typestate/AbsLoc.h"

#include <cassert>

using namespace mcsafe;
using namespace mcsafe::typestate;

AbsLocId LocationTable::create(AbstractLocation Loc) {
  AbsLocId Id = static_cast<AbsLocId>(Locs.size());
  if (!Loc.Name.empty())
    ByName.emplace(Loc.Name, Id);
  Locs.push_back(std::move(Loc));
  return Id;
}

AbsLocId LocationTable::lookup(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? InvalidLoc : It->second;
}

AbsLocId LocationTable::resolveField(AbsLocId Id, int64_t Offset,
                                     uint32_t Size) const {
  const AbstractLocation &L = Locs[Id];

  // A free-standing summary element (array summary like the paper's "e"):
  // any element-aligned, element-sized access resolves to the summary
  // itself. Bounds are the global-verification phase's job.
  if (L.Fields.empty()) {
    if (Offset < 0 || Size != L.Size)
      return InvalidLoc;
    if (L.Summary) {
      if (L.Size != 0 && Offset % L.Size != 0)
        return InvalidLoc;
      return Id;
    }
    return Offset == 0 ? Id : InvalidLoc;
  }

  // Struct location: find the field whose extent covers the access.
  for (const auto &[FieldOffset, Child] : L.Fields) {
    const AbstractLocation &ChildLoc = Locs[Child];
    int64_t Extent = ChildLoc.extent();
    if (Offset < FieldOffset || Offset + Size > FieldOffset + Extent)
      continue;
    int64_t Rel = Offset - FieldOffset;
    if (!ChildLoc.Fields.empty())
      return resolveField(Child, Rel, Size);
    if (ChildLoc.Summary && Extent > ChildLoc.Size) {
      // Embedded array: element-aligned, element-sized access only.
      if (Size != ChildLoc.Size || Rel % ChildLoc.Size != 0)
        return InvalidLoc;
      return Child;
    }
    return (Rel == 0 && Size == ChildLoc.Size) ? Child : InvalidLoc;
  }
  return InvalidLoc;
}

void LocationTable::collectLeaves(AbsLocId Id,
                                  std::vector<AbsLocId> &Out) const {
  const AbstractLocation &L = Locs[Id];
  if (!L.Fields.empty()) {
    for (const auto &[Offset, Child] : L.Fields) {
      (void)Offset;
      collectLeaves(Child, Out);
    }
    return;
  }
  Out.push_back(Id);
}
