//===- AbsLoc.h - Abstract locations ----------------------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Abstract locations of the paper's abstract storage model (Section 4.1):
/// each summarizes one or more physical locations and has a name, size,
/// alignment, and r/w attributes. Structured locations (structs, arrays)
/// additionally expose their layout:
///
///   - a struct location lists child locations per field offset;
///   - an embedded array field is a single *summary element* child whose
///     Extent covers the whole field (the paper's "e" summarizing all
///     elements of "arr"); free-standing array summaries (like e itself)
///     are plain summary locations pointed at by t[n]-typed values.
///
/// Typestates of scalar leaves live in AbstractStore; aggregate locations
/// are containers whose state is given by their children.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_TYPESTATE_ABSLOC_H
#define MCSAFE_TYPESTATE_ABSLOC_H

#include "typestate/Type.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mcsafe {
namespace typestate {

using AbsLocId = uint32_t;
inline constexpr AbsLocId InvalidLoc = UINT32_MAX;

/// One abstract location.
struct AbstractLocation {
  std::string Name;
  TypeRef Type;           ///< Contents type (can be aggregate).
  uint32_t Size = 0;      ///< Bytes.
  uint32_t Align = 0;     ///< Guaranteed alignment of the location's address.
  bool Readable = false;
  bool Writable = false;
  /// True when the location summarizes more than one physical location
  /// (array element summaries, heap summaries): only weak updates apply.
  bool Summary = false;
  /// Bytes of the enclosing aggregate this location covers. Equals Size
  /// for plain locations; Size * count for an embedded-array summary
  /// element (Size is then the element size). 0 means "use Size".
  uint32_t Extent = 0;

  /// Children by byte offset, for struct locations.
  std::vector<std::pair<uint32_t, AbsLocId>> Fields;
  AbsLocId Parent = InvalidLoc;

  uint32_t extent() const { return Extent ? Extent : Size; }
};

/// Owns all abstract locations of one checking problem.
class LocationTable {
public:
  AbsLocId create(AbstractLocation Loc);

  const AbstractLocation &loc(AbsLocId Id) const { return Locs[Id]; }
  AbstractLocation &loc(AbsLocId Id) { return Locs[Id]; }
  uint32_t size() const { return static_cast<uint32_t>(Locs.size()); }

  /// Finds a location by name, or InvalidLoc.
  AbsLocId lookup(const std::string &Name) const;

  /// The paper's lookUp(T(s), n, m): resolves the leaf location at byte
  /// offset \p Offset with access size \p Size inside location \p Id.
  /// For struct locations this selects the matching field; for array
  /// locations any in-bounds, element-aligned offset selects the summary
  /// element. Returns InvalidLoc when no such field exists.
  AbsLocId resolveField(AbsLocId Id, int64_t Offset, uint32_t Size) const;

  /// All scalar leaves of a location (itself if already scalar).
  void collectLeaves(AbsLocId Id, std::vector<AbsLocId> &Out) const;

private:
  std::vector<AbstractLocation> Locs;
  std::map<std::string, AbsLocId> ByName;
};

} // namespace typestate
} // namespace mcsafe

#endif // MCSAFE_TYPESTATE_ABSLOC_H
