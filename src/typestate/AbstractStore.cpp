//===- AbstractStore.cpp --------------------------------------------------===//

#include "typestate/AbstractStore.h"

#include <cassert>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::typestate;

const Typestate &AbstractStore::defaultTypestate() {
  static const Typestate Default = [] {
    Typestate Ts;
    Ts.Type = TypeFactory::bottom();
    Ts.S = State::bottom();
    Ts.A = Access::none();
    return Ts;
  }();
  return Default;
}

Typestate AbstractStore::get(Key K) const {
  assert(!Top && "reading from the Top store");
  auto It = Entries.find(K);
  return It == Entries.end() ? defaultTypestate() : It->second;
}

void AbstractStore::set(Key K, Typestate Ts) {
  assert(!Top && "writing to the Top store");
  if (Ts == defaultTypestate()) {
    Entries.erase(K); // Keep the map normalized for operator==.
    return;
  }
  Entries[K] = std::move(Ts);
}

Typestate AbstractStore::reg(int32_t Depth, sparc::Reg R) const {
  if (R.isZero()) {
    Typestate Zero;
    Zero.Type = TypeFactory::int32();
    Zero.S = State::initConst(0);
    Zero.A = Access::o();
    return Zero;
  }
  return get(regKey(Depth, R));
}

void AbstractStore::setReg(int32_t Depth, sparc::Reg R, Typestate Ts) {
  if (R.isZero())
    return; // Writes to %g0 are discarded.
  set(regKey(Depth, R), std::move(Ts));
}

Typestate AbstractStore::icc() const { return get(IccKey); }

void AbstractStore::setIcc(Typestate Ts) { set(IccKey, std::move(Ts)); }

Typestate AbstractStore::loc(AbsLocId Id) const { return get(locKey(Id)); }

void AbstractStore::setLoc(AbsLocId Id, Typestate Ts) {
  set(locKey(Id), std::move(Ts));
}

AbstractStore AbstractStore::meet(const AbstractStore &A,
                                  const AbstractStore &B) {
  if (A.Top)
    return B;
  if (B.Top)
    return A;
  AbstractStore Result = empty();
  if (A.CmpOrigin && B.CmpOrigin && *A.CmpOrigin == *B.CmpOrigin)
    Result.CmpOrigin = A.CmpOrigin;
  // Pointwise meet over the union of keys; absent entries are the default
  // typestate.
  auto ItA = A.Entries.begin(), ItB = B.Entries.begin();
  auto MeetInto = [&Result](Key K, const Typestate &X, const Typestate &Y) {
    Result.set(K, Typestate::meet(X, Y));
  };
  while (ItA != A.Entries.end() || ItB != B.Entries.end()) {
    if (ItB == B.Entries.end() ||
        (ItA != A.Entries.end() && ItA->first < ItB->first)) {
      MeetInto(ItA->first, ItA->second, defaultTypestate());
      ++ItA;
    } else if (ItA == A.Entries.end() || ItB->first < ItA->first) {
      MeetInto(ItB->first, defaultTypestate(), ItB->second);
      ++ItB;
    } else {
      MeetInto(ItA->first, ItA->second, ItB->second);
      ++ItA;
      ++ItB;
    }
  }
  return Result;
}

AbstractStore AbstractStore::widen(const AbstractStore &Old,
                                   const AbstractStore &New) {
  if (Old.Top || New.Top)
    return New;
  AbstractStore Result = New;
  for (auto &[K, Ts] : Result.Entries) {
    if (!Ts.S.isInit())
      continue;
    auto OldIt = Old.Entries.find(K);
    if (OldIt == Old.Entries.end() || !OldIt->second.S.isInit())
      continue;
    const State &OldS = OldIt->second.S;
    std::optional<int64_t> Lo = Ts.S.lower();
    std::optional<int64_t> Hi = Ts.S.upper();
    if (Lo && (!OldS.lower() || *Lo < *OldS.lower()))
      Lo = std::nullopt; // Still descending: drop to stabilize.
    if (Hi && (!OldS.upper() || *Hi > *OldS.upper()))
      Hi = std::nullopt;
    if (Lo != Ts.S.lower() || Hi != Ts.S.upper())
      // Known bits need no widening: the domain is finite and only ever
      // descends, so keeping New's bits cannot prevent stabilization.
      // (The checker rederives any bounds the bits still imply; see the
      // post-widen cross-refinement in Propagation.cpp.)
      Ts.S = State::initBits(Ts.S.bits(), Lo, Hi, Ts.S.pattern32());
  }
  return Result;
}

std::string AbstractStore::str(const LocationTable *Locs) const {
  if (Top)
    return "<top store>";
  std::ostringstream OS;
  for (const auto &[K, Ts] : Entries) {
    if (K == IccKey) {
      OS << "icc: ";
    } else if (K < -1) {
      AbsLocId Id = static_cast<AbsLocId>(-2 - K);
      if (Locs)
        OS << Locs->loc(Id).Name << ": ";
      else
        OS << "loc" << Id << ": ";
    } else {
      int32_t Depth = static_cast<int32_t>(K >> 8);
      sparc::Reg R(static_cast<uint8_t>(K & 0xFF));
      if (Depth != 0)
        OS << 'w' << Depth << '.';
      OS << R.name() << ": ";
    }
    OS << Ts.str(Locs) << '\n';
  }
  return OS.str();
}
