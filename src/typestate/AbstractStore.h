//===- AbstractStore.h - Map from abstract locations to typestates -*-C++-*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract store M: absLoc -> typestate (paper Section 4.2). A store
/// covers:
///   - the 32 integer registers, keyed per register-window depth (window
///     depths are static after CFG normalization, so save/restore are
///     exact renamings; globals are shared across depths);
///   - the integer condition codes (icc), treated as one location;
///   - the memory abstract locations of the LocationTable.
///
/// A store is either Top (unvisited program point, the identity of meet)
/// or a finite map whose absent entries default to <bottom_t, bottom_s,
/// no-access> — the paper's initial typestate for unannotated locations.
/// %g0 always reads as the initialized constant 0.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_TYPESTATE_ABSTRACTSTORE_H
#define MCSAFE_TYPESTATE_ABSTRACTSTORE_H

#include "sparc/Registers.h"
#include "typestate/Typestate.h"

#include <map>

namespace mcsafe {
namespace typestate {

/// An abstract store; value-semantic and comparable (for the fixpoint).
class AbstractStore {
public:
  /// The Top store: unvisited program point.
  static AbstractStore top() { return AbstractStore(true); }
  /// An empty (visited) store with every location at the default
  /// <bottom_t, bottom_s, no-access> typestate.
  static AbstractStore empty() { return AbstractStore(false); }

  bool isTop() const { return Top; }

  /// The default typestate of unmentioned locations.
  static const Typestate &defaultTypestate();

  // --- Registers (per window depth; globals shared). ----------------------

  Typestate reg(int32_t Depth, sparc::Reg R) const;
  void setReg(int32_t Depth, sparc::Reg R, Typestate Ts);

  // --- Condition codes. ----------------------------------------------------

  Typestate icc() const;
  void setIcc(Typestate Ts);

  /// When the condition codes were last set by "cmp R, imm" (subcc with a
  /// %g0 destination against an immediate or %g0), records (depth, R,
  /// imm) so branch edges can refine R's typestate (e.g. drop "null" from
  /// a points-to set after a successful != 0 test).
  struct IccOrigin {
    int32_t Depth = 0;
    sparc::Reg R;
    int64_t Imm = 0;
    friend bool operator==(const IccOrigin &A, const IccOrigin &B) {
      return A.Depth == B.Depth && A.R == B.R && A.Imm == B.Imm;
    }
  };
  const std::optional<IccOrigin> &iccOrigin() const { return CmpOrigin; }
  void setIccOrigin(std::optional<IccOrigin> Origin) {
    CmpOrigin = std::move(Origin);
  }

  // --- Memory locations. ---------------------------------------------------

  Typestate loc(AbsLocId Id) const;
  void setLoc(AbsLocId Id, Typestate Ts);

  /// Pointwise meet. Top is the identity.
  static AbstractStore meet(const AbstractStore &A, const AbstractStore &B);

  /// Widening of \p New against \p Old: scalar interval bounds that moved
  /// outward are dropped entirely, so the descending fixpoint iteration
  /// stabilizes even for counting loops.
  static AbstractStore widen(const AbstractStore &Old,
                             const AbstractStore &New);

  /// Visits every explicitly-tracked register entry as
  /// fn(depth, reg, typestate).
  template <typename Fn> void forEachReg(Fn F) const {
    for (const auto &[K, Ts] : Entries)
      if (K >= 0)
        F(static_cast<int32_t>(K >> 8),
          sparc::Reg(static_cast<uint8_t>(K & 0xFF)), Ts);
  }

  /// Drops every explicitly-tracked register entry for which \p Keep
  /// returns false (icc and memory locations are never touched).
  /// Dropped entries read as the default typestate afterwards. Used to
  /// discard registers liveness proved dead.
  template <typename Fn> void pruneRegs(Fn Keep) {
    for (auto It = Entries.begin(); It != Entries.end();) {
      if (It->first >= 0 &&
          !Keep(static_cast<int32_t>(It->first >> 8),
                sparc::Reg(static_cast<uint8_t>(It->first & 0xFF)),
                It->second))
        It = Entries.erase(It);
      else
        ++It;
    }
  }

  /// Visits every explicitly-tracked memory location as fn(id, typestate).
  template <typename Fn> void forEachLoc(Fn F) const {
    for (const auto &[K, Ts] : Entries)
      if (K < -1)
        F(static_cast<AbsLocId>(-2 - K), Ts);
  }

  friend bool operator==(const AbstractStore &A, const AbstractStore &B) {
    return A.Top == B.Top && A.CmpOrigin == B.CmpOrigin &&
           A.Entries == B.Entries;
  }
  friend bool operator!=(const AbstractStore &A, const AbstractStore &B) {
    return !(A == B);
  }

  /// Debug rendering; register names include their depth when non-zero.
  std::string str(const LocationTable *Locs = nullptr) const;

private:
  explicit AbstractStore(bool Top) : Top(Top) {}

  /// Key space: registers are (depth << 8) | reg; icc is -1; memory
  /// locations are -(2 + AbsLocId).
  using Key = int64_t;
  static Key regKey(int32_t Depth, sparc::Reg R) {
    if (R.isGlobal())
      Depth = 0; // Globals are shared across windows.
    return (static_cast<int64_t>(Depth) << 8) | R.number();
  }
  static constexpr Key IccKey = -1;
  static Key locKey(AbsLocId Id) { return -2 - static_cast<Key>(Id); }

  Typestate get(Key K) const;
  void set(Key K, Typestate Ts);

  bool Top;
  std::map<Key, Typestate> Entries;
  std::optional<IccOrigin> CmpOrigin;
};

} // namespace typestate
} // namespace mcsafe

#endif // MCSAFE_TYPESTATE_ABSTRACTSTORE_H
