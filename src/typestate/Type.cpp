//===- Type.cpp -----------------------------------------------------------===//

#include "typestate/Type.h"

#include <array>
#include <cassert>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::typestate;

std::string ArraySize::str() const {
  return Symbolic ? varName(Sym) : std::to_string(Literal);
}

bool typestate::isSignedGround(GroundKind K) {
  switch (K) {
  case GroundKind::Int8:
  case GroundKind::Int16:
  case GroundKind::Int32:
    return true;
  default:
    return false;
  }
}

uint32_t typestate::groundWidth(GroundKind K) {
  switch (K) {
  case GroundKind::Int8:
  case GroundKind::UInt8:
    return 1;
  case GroundKind::Int16:
  case GroundKind::UInt16:
    return 2;
  case GroundKind::Int32:
  case GroundKind::UInt32:
    return 4;
  }
  return 0;
}

uint32_t TypeNode::sizeInBytes() const {
  switch (Kind) {
  case TypeKind::Ground:
    return groundWidth(Ground);
  case TypeKind::Ptr:
  case TypeKind::ArrayBase:
  case TypeKind::ArrayInterior:
    return 4;
  case TypeKind::Abstract:
  case TypeKind::Struct:
  case TypeKind::Union:
    return DeclaredSize;
  case TypeKind::Bottom:
  case TypeKind::Top:
  case TypeKind::Func:
    return 0;
  }
  return 0;
}

uint32_t TypeNode::alignment() const {
  switch (Kind) {
  case TypeKind::Ground:
    return groundWidth(Ground);
  case TypeKind::Ptr:
  case TypeKind::ArrayBase:
  case TypeKind::ArrayInterior:
    return 4;
  case TypeKind::Abstract:
  case TypeKind::Struct:
  case TypeKind::Union:
    return DeclaredAlign;
  case TypeKind::Bottom:
  case TypeKind::Top:
  case TypeKind::Func:
    return 0;
  }
  return 0;
}

std::string TypeNode::str() const {
  switch (Kind) {
  case TypeKind::Bottom:
    return "bottom_t";
  case TypeKind::Top:
    return "top_t";
  case TypeKind::Ground:
    switch (Ground) {
    case GroundKind::Int8:
      return "int8";
    case GroundKind::UInt8:
      return "uint8";
    case GroundKind::Int16:
      return "int16";
    case GroundKind::UInt16:
      return "uint16";
    case GroundKind::Int32:
      return "int32";
    case GroundKind::UInt32:
      return "uint32";
    }
    return "int?";
  case TypeKind::Abstract:
    return "abstract " + Name;
  case TypeKind::ArrayBase:
    return Pointee->str() + "[" + Size.str() + "]";
  case TypeKind::ArrayInterior:
    return Pointee->str() + "(" + Size.str() + "]";
  case TypeKind::Ptr:
    return Pointee->str() + " ptr";
  case TypeKind::Struct:
    return "struct " + Name;
  case TypeKind::Union:
    return "union " + Name;
  case TypeKind::Func:
    return "func " + Name;
  }
  return "?";
}

// TypeFactory builds nodes directly (it is a friend).
TypeRef TypeFactory::bottom() {
  static TypeRef B = [] {
    auto N = std::shared_ptr<TypeNode>(new TypeNode());
    N->Kind = TypeKind::Bottom;
    return TypeRef(N);
  }();
  return B;
}

TypeRef TypeFactory::top() {
  static TypeRef T = [] {
    auto N = std::shared_ptr<TypeNode>(new TypeNode());
    N->Kind = TypeKind::Top;
    return TypeRef(N);
  }();
  return T;
}

TypeRef TypeFactory::ground(GroundKind K) {
  // Built eagerly under the guaranteed-once static initialization: the
  // lazy check-then-fill this replaces raced when concurrent checks
  // requested the same ground type.
  static const std::array<TypeRef, 6> Cache = [] {
    std::array<TypeRef, 6> A;
    for (size_t I = 0; I < A.size(); ++I) {
      auto N = std::shared_ptr<TypeNode>(new TypeNode());
      N->Kind = TypeKind::Ground;
      N->Ground = static_cast<GroundKind>(I);
      A[I] = TypeRef(N);
    }
    return A;
  }();
  return Cache[static_cast<size_t>(K)];
}

TypeRef TypeFactory::abstract(std::string Name, uint32_t Size,
                              uint32_t Align) {
  auto N = std::shared_ptr<TypeNode>(new TypeNode());
  N->Kind = TypeKind::Abstract;
  N->Name = std::move(Name);
  N->DeclaredSize = Size;
  N->DeclaredAlign = Align;
  return N;
}

TypeRef TypeFactory::arrayBase(TypeRef Elem, ArraySize Size) {
  auto N = std::shared_ptr<TypeNode>(new TypeNode());
  N->Kind = TypeKind::ArrayBase;
  N->Pointee = std::move(Elem);
  N->Size = Size;
  return N;
}

TypeRef TypeFactory::arrayInterior(TypeRef Elem, ArraySize Size) {
  auto N = std::shared_ptr<TypeNode>(new TypeNode());
  N->Kind = TypeKind::ArrayInterior;
  N->Pointee = std::move(Elem);
  N->Size = Size;
  return N;
}

TypeRef TypeFactory::ptr(TypeRef Pointee) {
  auto N = std::shared_ptr<TypeNode>(new TypeNode());
  N->Kind = TypeKind::Ptr;
  N->Pointee = std::move(Pointee);
  return N;
}

TypeRef TypeFactory::strct(std::string Name, std::vector<Member> Members,
                           uint32_t Size, uint32_t Align) {
  auto N = std::shared_ptr<TypeNode>(new TypeNode());
  N->Kind = TypeKind::Struct;
  N->Name = std::move(Name);
  N->Members = std::move(Members);
  N->DeclaredSize = Size;
  N->DeclaredAlign = Align;
  return N;
}

TypeRef TypeFactory::unon(std::string Name, std::vector<Member> Members,
                          uint32_t Size, uint32_t Align) {
  auto N = std::shared_ptr<TypeNode>(new TypeNode());
  N->Kind = TypeKind::Union;
  N->Name = std::move(Name);
  N->Members = std::move(Members);
  N->DeclaredSize = Size;
  N->DeclaredAlign = Align;
  return N;
}

TypeRef TypeFactory::func(std::string SummaryName) {
  auto N = std::shared_ptr<TypeNode>(new TypeNode());
  N->Kind = TypeKind::Func;
  N->Name = std::move(SummaryName);
  return N;
}

bool typestate::typeEquals(const TypeRef &A, const TypeRef &B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case TypeKind::Bottom:
  case TypeKind::Top:
    return true;
  case TypeKind::Ground:
    return A->ground() == B->ground();
  case TypeKind::Abstract:
  case TypeKind::Struct:
  case TypeKind::Union:
  case TypeKind::Func:
    return A->name() == B->name(); // Nominal.
  case TypeKind::ArrayBase:
  case TypeKind::ArrayInterior:
    return A->arraySize() == B->arraySize() &&
           typeEquals(A->pointee(), B->pointee());
  case TypeKind::Ptr:
    return typeEquals(A->pointee(), B->pointee());
  }
  return false;
}

TypeRef typestate::typeMeet(const TypeRef &A, const TypeRef &B) {
  assert(A && B && "null type");
  if (A->isTop())
    return B;
  if (B->isTop())
    return A;
  if (A->isBottom() || B->isBottom())
    return TypeFactory::bottom();
  if (typeEquals(A, B))
    return A;
  // meet(t[n], t(n]) = t(n].
  auto ArrayPair = [](const TypeRef &Base, const TypeRef &Interior) {
    return Base->kind() == TypeKind::ArrayBase &&
           Interior->kind() == TypeKind::ArrayInterior &&
           Base->arraySize() == Interior->arraySize() &&
           typeEquals(Base->pointee(), Interior->pointee());
  };
  if (ArrayPair(A, B))
    return B;
  if (ArrayPair(B, A))
    return A;
  // Everything else: distinct types meet to bottom (the paper notes the
  // absence of subtyping as a limitation; see Section 8).
  return TypeFactory::bottom();
}
