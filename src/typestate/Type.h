//===- Type.h - The paper's type system (Figure 4) --------------*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type component of typestates (paper Figure 4):
///
///   t ::= ground | abstract | t[n] | t(n] | t ptr
///       | s { m1, ..., mk } | u {| m1, ..., mk |} | (t1,...,tk) -> t
///       | bottom | top
///
/// where t[n] is a pointer to the *base* of an array of n elements, t(n]
/// is a pointer into the *middle* of such an array, and members carry
/// explicit byte offsets. Array sizes may be symbolic (a variable such as
/// "n" constrained by the invocation's linear constraints). Struct and
/// union types are nominal — equality is by name — which both matches C
/// practice and allows recursive types (struct thread { ...; thread*
/// next; }).
///
/// Types are immutable and hash-consed per TypeFactory use; equality is
/// structural except for named aggregates.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_TYPESTATE_TYPE_H
#define MCSAFE_TYPESTATE_TYPE_H

#include "constraints/Var.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace mcsafe {
namespace typestate {

class TypeNode;
using TypeRef = std::shared_ptr<const TypeNode>;

enum class TypeKind : uint8_t {
  Bottom,        ///< No consistent type (failed meet).
  Top,           ///< Unconstrained (initial value for propagation).
  Ground,        ///< Fixed-width integer.
  Abstract,      ///< Opaque host type, identified by name.
  ArrayBase,     ///< t[n]: pointer to the base of an array.
  ArrayInterior, ///< t(n]: pointer into the middle of an array.
  Ptr,           ///< t ptr.
  Struct,
  Union,
  Func,          ///< Function; carries the summary name to check calls.
};

enum class GroundKind : uint8_t {
  Int8,
  UInt8,
  Int16,
  UInt16,
  Int32,
  UInt32,
};

/// A literal or symbolic array length.
struct ArraySize {
  bool Symbolic = false;
  VarId Sym;       ///< Valid when Symbolic.
  int64_t Literal = 0;

  static ArraySize literal(int64_t N) {
    ArraySize S;
    S.Literal = N;
    return S;
  }
  static ArraySize symbolic(VarId V) {
    ArraySize S;
    S.Symbolic = true;
    S.Sym = V;
    return S;
  }
  friend bool operator==(const ArraySize &A, const ArraySize &B) {
    if (A.Symbolic != B.Symbolic)
      return false;
    return A.Symbolic ? A.Sym == B.Sym : A.Literal == B.Literal;
  }
  std::string str() const;
};

/// A struct/union member: label, type, byte offset. Count > 1 declares an
/// in-place array of Count elements of Type (used to annotate stack
/// frames and host structures with embedded arrays).
struct Member {
  std::string Label;
  TypeRef Type;
  uint32_t Offset = 0;
  uint32_t Count = 1;
};

/// An immutable type.
class TypeNode {
public:
  TypeKind kind() const { return Kind; }
  bool isBottom() const { return Kind == TypeKind::Bottom; }
  bool isTop() const { return Kind == TypeKind::Top; }
  bool isGround() const { return Kind == TypeKind::Ground; }
  bool isPointerLike() const {
    return Kind == TypeKind::Ptr || Kind == TypeKind::ArrayBase ||
           Kind == TypeKind::ArrayInterior || Kind == TypeKind::Func;
  }
  bool isAggregate() const {
    return Kind == TypeKind::Struct || Kind == TypeKind::Union;
  }

  GroundKind ground() const { return Ground; }
  /// Element type of t[n] / t(n]; pointee of t ptr.
  const TypeRef &pointee() const { return Pointee; }
  const ArraySize &arraySize() const { return Size; }
  /// Name of an Abstract / Struct / Union type, or the summary name of a
  /// Func type.
  const std::string &name() const { return Name; }
  const std::vector<Member> &members() const { return Members; }

  /// Size in bytes (pointers are 4 on SPARC V8). Abstract types report
  /// their declared size; Top/Bottom/Func report 0.
  uint32_t sizeInBytes() const;
  /// Natural alignment in bytes (0 = no requirement).
  uint32_t alignment() const;

  std::string str() const;

private:
  friend class TypeFactory;
  TypeNode() = default;

  TypeKind Kind = TypeKind::Top;
  GroundKind Ground = GroundKind::Int32;
  TypeRef Pointee;
  ArraySize Size;
  std::string Name;
  std::vector<Member> Members;
  uint32_t DeclaredSize = 0;  ///< For Abstract / Struct / Union.
  uint32_t DeclaredAlign = 0;
};

/// Builders. Bottom/Top/ground types are singletons; the rest are cheap
/// shared nodes.
class TypeFactory {
public:
  static TypeRef bottom();
  static TypeRef top();
  static TypeRef ground(GroundKind K);
  static TypeRef int8() { return ground(GroundKind::Int8); }
  static TypeRef uint8() { return ground(GroundKind::UInt8); }
  static TypeRef int16() { return ground(GroundKind::Int16); }
  static TypeRef uint16() { return ground(GroundKind::UInt16); }
  static TypeRef int32() { return ground(GroundKind::Int32); }
  static TypeRef uint32() { return ground(GroundKind::UInt32); }
  static TypeRef abstract(std::string Name, uint32_t Size, uint32_t Align);
  static TypeRef arrayBase(TypeRef Elem, ArraySize Size);
  static TypeRef arrayInterior(TypeRef Elem, ArraySize Size);
  static TypeRef ptr(TypeRef Pointee);
  static TypeRef strct(std::string Name, std::vector<Member> Members,
                       uint32_t Size, uint32_t Align);
  static TypeRef unon(std::string Name, std::vector<Member> Members,
                      uint32_t Size, uint32_t Align);
  /// A function type; \p SummaryName links to a trusted-function summary
  /// in the policy.
  static TypeRef func(std::string SummaryName);
};

/// Structural equality (nominal for Struct/Union/Abstract/Func).
bool typeEquals(const TypeRef &A, const TypeRef &B);

/// The meet of the type lattice (paper Section 4.1):
///   meet(top, t) = t; meet(bottom, t) = bottom;
///   meet(t[n], t(n]) = t(n];
///   meet(t[n], t[m]) = bottom when n != m;
///   meet of distinct pointer types, or pointer with non-pointer = bottom;
///   meet of distinct non-pointer types = bottom.
TypeRef typeMeet(const TypeRef &A, const TypeRef &B);

/// True when \p K is a signed ground kind.
bool isSignedGround(GroundKind K);
/// Byte width of a ground kind.
uint32_t groundWidth(GroundKind K);

} // namespace typestate
} // namespace mcsafe

#endif // MCSAFE_TYPESTATE_TYPE_H
