//===- Typestate.cpp ------------------------------------------------------===//

#include "typestate/Typestate.h"

#include <algorithm>
#include <sstream>

using namespace mcsafe;
using namespace mcsafe::typestate;

State State::meet(const State &A, const State &B) {
  if (A.isTop())
    return B;
  if (B.isTop())
    return A;
  if (A.isBottom() || B.isBottom())
    return bottom();
  if (A.K == B.K) {
    switch (A.K) {
    case Kind::Init: {
      // Interval hull; known bits keep what both sides agree on.
      std::optional<int64_t> Lo, Hi;
      if (A.Lo && B.Lo)
        Lo = std::min(*A.Lo, *B.Lo);
      if (A.Hi && B.Hi)
        Hi = std::max(*A.Hi, *B.Hi);
      return initBits(analysis::KnownBits::meet(A.Bits, B.Bits), Lo, Hi,
                      A.Pat32 && B.Pat32);
    }
    case Kind::PointsTo: {
      std::set<PtrTarget> Union = A.Targets;
      Union.insert(B.Targets.begin(), B.Targets.end());
      return pointsTo(std::move(Union), A.Null || B.Null);
    }
    case Kind::Uninit:
      return uninit();
    default:
      break;
    }
  }
  // Mixed kinds (init vs uninit, pointer vs scalar-init, ...): the value
  // cannot be relied upon — treat as uninitialized.
  return uninit();
}

std::string State::str(const LocationTable *Locs) const {
  switch (K) {
  case Kind::Top:
    return "top";
  case Kind::Bottom:
    return "bottom";
  case Kind::Uninit:
    return "uninit";
  case Kind::Init: {
    if (constant())
      return "init(" + std::to_string(*constant()) + ")";
    std::string S = "init";
    if (Lo || Hi) {
      S += "[";
      S += Lo ? std::to_string(*Lo) : "-inf";
      S += ",";
      S += Hi ? std::to_string(*Hi) : "+inf";
      S += "]";
    }
    if (!Bits.isTop())
      S += " " + Bits.str();
    return S;
  }
  case Kind::PointsTo: {
    std::ostringstream OS;
    OS << '{';
    bool First = true;
    for (const PtrTarget &T : Targets) {
      if (!First)
        OS << ',';
      First = false;
      if (Locs)
        OS << Locs->loc(T.Loc).Name;
      else
        OS << "loc" << T.Loc;
      if (T.Offset != 0)
        OS << '+' << T.Offset;
    }
    if (Null) {
      if (!First)
        OS << ',';
      OS << "null";
    }
    OS << '}';
    return OS.str();
  }
  }
  return "?";
}

std::string Access::str() const {
  std::string S;
  if (F)
    S += 'f';
  if (X)
    S += 'x';
  if (O)
    S += 'o';
  return S.empty() ? "-" : S;
}

Typestate Typestate::meet(const Typestate &A, const Typestate &B) {
  if (A.isTop())
    return B;
  if (B.isTop())
    return A;
  Typestate R;
  R.Type = typeMeet(A.Type, B.Type);
  R.S = State::meet(A.S, B.S);
  R.A = Access::meet(A.A, B.A);
  return R;
}

std::string Typestate::str(const LocationTable *Locs) const {
  return "<" + Type->str() + ", " + S.str(Locs) + ", " + A.str() + ">";
}
