//===- Typestate.h - States, access permissions, typestates -----*- C++ -*-===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The state and access components of typestates, and the typestate triple
/// <type, state, access> itself (paper Section 4.1).
///
/// State lattice (Figure 5):
///   - Top: unvisited (identity of meet);
///   - Init: an initialized scalar, optionally with a known constant
///     value (used to resolve constant-built addresses and offsets);
///   - PointsTo: an initialized pointer, with the set of abstract
///     locations it may reference and a may-be-null flag (meet = set
///     union, matching "P1 below P2 iff P2 subset of P1");
///   - Uninit: an uninitialized value of the location's type;
///   - Bottom: undefined value of any type.
///
/// Access permissions: f (followable), x (executable), o (operable) are
/// properties of the *value*; r/w live on abstract locations. Meet is
/// set intersection.
///
//===----------------------------------------------------------------------===//

#ifndef MCSAFE_TYPESTATE_TYPESTATE_H
#define MCSAFE_TYPESTATE_TYPESTATE_H

#include "analysis/KnownBits.h"
#include "typestate/AbsLoc.h"
#include "typestate/Type.h"

#include <optional>
#include <set>
#include <string>

namespace mcsafe {
namespace typestate {

/// One element of a points-to set: an abstract location plus a byte
/// offset into it (0 for "points at the location"; nonzero offsets model
/// pointers to aggregate interiors, e.g. %fp pointing one-past-the-end of
/// the annotated stack frame).
struct PtrTarget {
  AbsLocId Loc = InvalidLoc;
  int64_t Offset = 0;

  friend bool operator<(const PtrTarget &A, const PtrTarget &B) {
    if (A.Loc != B.Loc)
      return A.Loc < B.Loc;
    return A.Offset < B.Offset;
  }
  friend bool operator==(const PtrTarget &A, const PtrTarget &B) {
    return A.Loc == B.Loc && A.Offset == B.Offset;
  }
};

/// Value-state component of a typestate.
class State {
public:
  enum class Kind : uint8_t {
    Top,      ///< Unvisited.
    Init,     ///< Initialized scalar.
    PointsTo, ///< Initialized pointer.
    Uninit,   ///< Uninitialized.
    Bottom,   ///< Undefined value of any type.
  };

  State() : K(Kind::Top) {}

  static State top() { return State(); }
  static State bottom() { return make(Kind::Bottom); }
  static State uninit() { return make(Kind::Uninit); }
  static State init() { return make(Kind::Init); }
  static State initConst(int64_t Value) {
    return initRange(Value, Value);
  }
  /// An initialized scalar with (optional) interval bounds — the light
  /// forward value analysis the paper recommends to assist the
  /// induction-iteration method ("forward propagation of information
  /// about array bounds").
  static State initRange(std::optional<int64_t> Lo,
                         std::optional<int64_t> Hi) {
    State S = make(Kind::Init);
    S.Lo = Lo;
    S.Hi = Hi;
    // A constant's 32-bit pattern is fully known; normalizing here keeps
    // equal intervals equal regardless of which factory built them.
    if (Lo && Hi && *Lo == *Hi) {
      S.Bits = analysis::KnownBits::fromConstant(
          static_cast<uint32_t>(*Lo));
      S.Pat32 = *Lo >= INT32_MIN && *Lo <= INT32_MAX;
    }
    return S;
  }
  /// An initialized scalar carrying a known-bits fact about its 32-bit
  /// pattern (see analysis/KnownBits.h) alongside optional interval
  /// bounds. Constants keep their exact pattern regardless of \p B.
  /// \p Exact32 records that the value provably equals the signed-int32
  /// reading of its pattern (true for bitwise-op and shift results),
  /// letting later cross-refinement rederive interval bounds from bits
  /// alone — e.g. after widening dropped them.
  static State initBits(analysis::KnownBits B,
                        std::optional<int64_t> Lo = std::nullopt,
                        std::optional<int64_t> Hi = std::nullopt,
                        bool Exact32 = false) {
    State S = initRange(Lo, Hi);
    if (!S.constant()) {
      S.Bits = B;
      S.Pat32 = Exact32;
    }
    return S;
  }
  static State pointsTo(std::set<PtrTarget> Targets, bool MayBeNull) {
    State S = make(Kind::PointsTo);
    S.Targets = std::move(Targets);
    S.Null = MayBeNull;
    return S;
  }
  static State pointsToLoc(AbsLocId Loc, int64_t Offset = 0) {
    return pointsTo({PtrTarget{Loc, Offset}}, /*MayBeNull=*/false);
  }
  /// The null pointer constant.
  static State nullPtr() { return pointsTo({}, /*MayBeNull=*/true); }

  Kind kind() const { return K; }
  bool isTop() const { return K == Kind::Top; }
  bool isInit() const { return K == Kind::Init; }
  bool isPointsTo() const { return K == Kind::PointsTo; }
  bool isUninit() const { return K == Kind::Uninit; }
  bool isBottom() const { return K == Kind::Bottom; }

  /// True when reading the value is safe (it is initialized).
  bool isInitialized() const { return isInit() || isPointsTo(); }

  /// Known constant value, when tracked (a singleton interval).
  std::optional<int64_t> constant() const {
    if (Lo && Hi && *Lo == *Hi)
      return Lo;
    return std::nullopt;
  }
  /// Interval bounds of an initialized scalar, when tracked.
  std::optional<int64_t> lower() const { return Lo; }
  std::optional<int64_t> upper() const { return Hi; }
  /// Known bits of an initialized scalar's 32-bit pattern (top when
  /// nothing is known or the state is not an Init scalar).
  const analysis::KnownBits &bits() const { return Bits; }
  /// Whether the value provably equals the signed-int32 reading of its
  /// pattern (see initBits).
  bool pattern32() const { return Pat32; }

  const std::set<PtrTarget> &targets() const { return Targets; }
  bool mayBeNull() const { return Null; }
  /// A pointer that is definitely null (empty target set, null flag on).
  bool isDefinitelyNull() const {
    return K == Kind::PointsTo && Targets.empty() && Null;
  }

  /// Lattice meet.
  static State meet(const State &A, const State &B);

  friend bool operator==(const State &A, const State &B) {
    return A.K == B.K && A.Lo == B.Lo && A.Hi == B.Hi &&
           A.Bits == B.Bits && A.Pat32 == B.Pat32 && A.Null == B.Null &&
           A.Targets == B.Targets;
  }
  friend bool operator!=(const State &A, const State &B) {
    return !(A == B);
  }

  std::string str(const LocationTable *Locs = nullptr) const;

private:
  static State make(Kind K) {
    State S;
    S.K = K;
    return S;
  }

  Kind K;
  std::optional<int64_t> Lo, Hi;
  analysis::KnownBits Bits;
  bool Pat32 = false;
  std::set<PtrTarget> Targets;
  bool Null = false;
};

/// Value access permissions {f, x, o}.
struct Access {
  bool F = false; ///< Followable (pointer may be dereferenced).
  bool X = false; ///< Executable (function pointer may be called).
  bool O = false; ///< Operable (examine / copy / arithmetic).

  static Access none() { return {}; }
  static Access full() { return {true, true, true}; }
  static Access fo() { return {true, false, true}; }
  static Access o() { return {false, false, true}; }

  static Access meet(Access A, Access B) {
    return {A.F && B.F, A.X && B.X, A.O && B.O};
  }
  friend bool operator==(const Access &A, const Access &B) {
    return A.F == B.F && A.X == B.X && A.O == B.O;
  }
  std::string str() const;
};

/// The typestate triple.
struct Typestate {
  TypeRef Type = TypeFactory::top();
  State S;
  Access A = Access::full();

  /// The lattice top (identity of meet); the initial value at all
  /// program points except the entry.
  static Typestate top() { return Typestate(); }

  bool isTop() const { return Type->isTop() && S.isTop(); }

  static Typestate meet(const Typestate &A, const Typestate &B);

  friend bool operator==(const Typestate &A, const Typestate &B) {
    return typeEquals(A.Type, B.Type) && A.S == B.S && A.A == B.A;
  }
  friend bool operator!=(const Typestate &A, const Typestate &B) {
    return !(A == B);
  }

  std::string str(const LocationTable *Locs = nullptr) const;
};

} // namespace typestate
} // namespace mcsafe

#endif // MCSAFE_TYPESTATE_TYPESTATE_H
