//===- DataflowTest.cpp - Framework, liveness, reaching defs --------------===//

#include "analysis/Liveness.h"
#include "analysis/ReachingDefs.h"
#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::analysis;
using namespace mcsafe::cfg;
using namespace mcsafe::sparc;

namespace {

std::optional<Cfg> build(const char *Source, DiagnosticEngine &Diags) {
  std::string Error;
  std::optional<Module> M = assemble(Source, &Error);
  EXPECT_TRUE(M.has_value()) << Error;
  if (!M)
    return std::nullopt;
  static std::vector<Module> Keep; // The Cfg borrows the module.
  Keep.push_back(std::move(*M));
  return Cfg::build(Keep.back(), Diags);
}

/// The first node executing the instruction at module index \p Index.
NodeId findNode(const Cfg &G, uint32_t Index) {
  for (NodeId Id = 0; Id < G.size(); ++Id)
    if (G.node(Id).Kind == NodeKind::Normal &&
        G.node(Id).InstIndex == Index)
      return Id;
  ADD_FAILURE() << "no node for instruction " << Index;
  return InvalidNode;
}

/// All nodes executing the instruction at module index \p Index
/// (delay-slot instructions are replicated per edge).
std::vector<NodeId> findNodes(const Cfg &G, uint32_t Index) {
  std::vector<NodeId> Ids;
  for (NodeId Id = 0; Id < G.size(); ++Id)
    if (G.node(Id).Kind == NodeKind::Normal &&
        G.node(Id).InstIndex == Index)
      Ids.push_back(Id);
  return Ids;
}

TEST(Liveness, StraightLineUseKillsBackward) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    clr %o0
    add %o0,1,%o1
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();

  policy::Policy Pol;
  LivenessResult L = computeLiveness(*G, Pol);
  ASSERT_TRUE(L.Converged);

  NodeId Clr = findNode(*G, 0), Add = findNode(*G, 1);
  // %o0 is consumed by the add, so it is live into the add but dead
  // into the clr (which redefines it).
  EXPECT_TRUE(L.liveIn(Add, 0, O0));
  EXPECT_FALSE(L.liveIn(Clr, 0, O0));
  // %o1 is never read and the policy constrains nothing at exit.
  EXPECT_FALSE(L.liveOut(Add, 0, Reg(9)));
}

TEST(Liveness, AnnulledDelaySlotUseOnTakenEdgeOnly) {
  // The annulled slot instruction (add, reading %o1) executes only when
  // the branch is taken, so %o1 must be live along the taken edge but
  // not into the fall-through block.
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    cmp %o0,0
    be,a taken
    add %o1,1,%o2
    clr %o3
  taken:
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();

  policy::Policy Pol;
  LivenessResult L = computeLiveness(*G, Pol);
  ASSERT_TRUE(L.Converged);

  NodeId Cmp = findNode(*G, 0);
  NodeId Fallthrough = findNode(*G, 3); // clr %o3
  // The annulled slot is replicated onto exactly one edge.
  EXPECT_EQ(findNodes(*G, 2).size(), 1u);
  EXPECT_TRUE(L.liveIn(Cmp, 0, Reg(9)));         // %o1, via taken edge.
  EXPECT_FALSE(L.liveIn(Fallthrough, 0, Reg(9))); // Not on this path.
}

TEST(Liveness, NonAnnulledDelaySlotLiveOnBothEdges) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    cmp %o0,0
    be taken
    add %o1,1,%o2
    clr %o3
  taken:
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();

  policy::Policy Pol;
  LivenessResult L = computeLiveness(*G, Pol);
  ASSERT_TRUE(L.Converged);

  // Both replicas of the slot read %o1, so it is live into the branch
  // on both edges (i.e. live-in at the cmp too).
  EXPECT_EQ(findNodes(*G, 2).size(), 2u);
  EXPECT_TRUE(L.liveIn(findNode(*G, 0), 0, Reg(9)));
}

TEST(Liveness, BranchConsumesConditionCodes) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    cmp %o0,0
    be done
    nop
    clr %o1
  done:
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();

  policy::Policy Pol;
  LivenessResult L = computeLiveness(*G, Pol);
  NodeId Cmp = findNode(*G, 0), Be = findNode(*G, 1);
  // icc is live out of the cmp (the be reads it) and dead after the be.
  EXPECT_TRUE(L.LiveOut[Cmp].test(L.Keys.iccKey()));
  EXPECT_TRUE(L.LiveIn[Be].test(L.Keys.iccKey()));
  EXPECT_FALSE(L.LiveOut[Be].test(L.Keys.iccKey()));
}

TEST(Liveness, SaveRenamesOutToIn) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    save %sp,-96,%sp
    add %i0,1,%o0
    ret
    restore
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();

  policy::Policy Pol;
  LivenessResult L = computeLiveness(*G, Pol);
  ASSERT_TRUE(L.Converged);

  NodeId Save = findNode(*G, 0);
  // The add reads %i0 at depth 1; through the save that is the caller's
  // %o0 at depth 0.
  EXPECT_TRUE(L.liveIn(Save, 0, O0));
  EXPECT_FALSE(L.liveIn(Save, 0, Reg(9))); // %o1 is not.
}

TEST(ReachingDefs, LoopCarriesBothDefinitions) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    clr %o0
  loop:
    cmp %o0,10
    bge done
    nop
    inc %o0
    ba loop
    nop
  done:
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();

  policy::Policy Pol;
  ReachingDefsResult R = computeReachingDefs(*G, Pol);
  ASSERT_TRUE(R.Converged);

  NodeId Clr = findNode(*G, 0), Cmp = findNode(*G, 1);
  NodeId Inc = findNode(*G, 4);

  // At the loop head both the initial clr and the back-edge inc reach.
  std::vector<DefSite> AtCmp = R.defsReaching(Cmp, 0, O0);
  ASSERT_EQ(AtCmp.size(), 2u);
  EXPECT_TRUE((AtCmp[0].Node == Clr && AtCmp[1].Node == Inc) ||
              (AtCmp[0].Node == Inc && AtCmp[1].Node == Clr));

  // Before the clr only the synthetic entry definition reaches.
  std::vector<DefSite> AtClr = R.defsReaching(Clr, 0, O0);
  ASSERT_EQ(AtClr.size(), 1u);
  EXPECT_TRUE(AtClr[0].isEntry());
}

TEST(ReachingDefs, KillIsStrongForStraightLine) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    clr %o0
    inc %o0
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();

  policy::Policy Pol;
  ReachingDefsResult R = computeReachingDefs(*G, Pol);
  NodeId Inc = findNode(*G, 1);
  std::vector<DefSite> AtInc = R.defsReaching(Inc, 0, O0);
  ASSERT_EQ(AtInc.size(), 1u);
  EXPECT_EQ(AtInc[0].Node, findNode(*G, 0)); // Only the clr.
}

} // namespace
