//===- KnownBitsFuzzTest.cpp - Soundness fuzzing for the bit domain -------===//
//
// Differential soundness check of every KnownBits transfer function
// against concrete 32-bit machine arithmetic: draw a random abstract
// input, draw random concrete patterns compatible with it, and require
// the abstract result to contain the concrete result. A deterministic
// seed keeps the suite reproducible; the CI sanitizer matrix runs this
// binary under UBSan, where the wrapping transfer arithmetic would trip
// any signed-overflow mistake.
//
//===----------------------------------------------------------------------===//

#include "analysis/KnownBits.h"
#include "sparc/Instruction.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <random>

using namespace mcsafe;
using namespace mcsafe::analysis;

namespace {

constexpr int Trials = 10000;

/// A deterministic generator per test so failures replay exactly.
std::mt19937 rng() { return std::mt19937(0xC0FFEE); }

/// A random abstract element: every bit independently unknown / known
/// zero / known one, biased toward partial knowledge.
KnownBits randomBits(std::mt19937 &R) {
  uint32_t Known = static_cast<uint32_t>(R()) & static_cast<uint32_t>(R());
  uint32_t Value = static_cast<uint32_t>(R());
  return {Known & ~Value, Known & Value};
}

/// A random concrete pattern compatible with \p B.
uint32_t randomMember(std::mt19937 &R, KnownBits B) {
  uint32_t V = static_cast<uint32_t>(R());
  return (V & ~B.Zeros) | B.Ones;
}

/// Runs the containment check for one binary operation.
template <typename AbsFn, typename ConcFn>
void fuzzBinary(const char *Name, AbsFn Abs, ConcFn Conc) {
  std::mt19937 R = rng();
  for (int I = 0; I < Trials; ++I) {
    KnownBits A = randomBits(R), B = randomBits(R);
    uint32_t X = randomMember(R, A), Y = randomMember(R, B);
    KnownBits Out = Abs(A, B);
    EXPECT_EQ(Out.Zeros & Out.Ones, 0u) << Name;
    ASSERT_TRUE(Out.contains(Conc(X, Y)))
        << Name << " A=" << A.str() << " B=" << B.str() << " X=" << X
        << " Y=" << Y << " out=" << Out.str();
  }
}

TEST(KnownBitsFuzz, And) {
  fuzzBinary("and", KnownBits::bitAnd,
             [](uint32_t X, uint32_t Y) { return X & Y; });
}
TEST(KnownBitsFuzz, Or) {
  fuzzBinary("or", KnownBits::bitOr,
             [](uint32_t X, uint32_t Y) { return X | Y; });
}
TEST(KnownBitsFuzz, Xor) {
  fuzzBinary("xor", KnownBits::bitXor,
             [](uint32_t X, uint32_t Y) { return X ^ Y; });
}
TEST(KnownBitsFuzz, AndNot) {
  fuzzBinary("andn", KnownBits::bitAndNot,
             [](uint32_t X, uint32_t Y) { return X & ~Y; });
}
TEST(KnownBitsFuzz, OrNot) {
  fuzzBinary("orn", KnownBits::bitOrNot,
             [](uint32_t X, uint32_t Y) { return X | ~Y; });
}
TEST(KnownBitsFuzz, Xnor) {
  fuzzBinary("xnor", KnownBits::bitXnor,
             [](uint32_t X, uint32_t Y) { return ~(X ^ Y); });
}
TEST(KnownBitsFuzz, Add) {
  fuzzBinary("add", KnownBits::add,
             [](uint32_t X, uint32_t Y) { return X + Y; });
}
TEST(KnownBitsFuzz, Sub) {
  fuzzBinary("sub", KnownBits::sub,
             [](uint32_t X, uint32_t Y) { return X - Y; });
}

TEST(KnownBitsFuzz, Not) {
  std::mt19937 R = rng();
  for (int I = 0; I < Trials; ++I) {
    KnownBits A = randomBits(R);
    uint32_t X = randomMember(R, A);
    ASSERT_TRUE(KnownBits::bitNot(A).contains(~X));
  }
}

// Shifts: the count operand is itself abstract, and the machine consumes
// only its low five bits (sparc::shiftCount) — fuzz counts well past 32
// to pin the interpreter/transfer agreement (the satellite regression:
// both sides must mask in the same place).
TEST(KnownBitsFuzz, Shl) {
  fuzzBinary("sll", KnownBits::shl, [](uint32_t X, uint32_t Y) {
    return X << sparc::shiftCount(Y);
  });
}
TEST(KnownBitsFuzz, Lshr) {
  fuzzBinary("srl", KnownBits::lshr, [](uint32_t X, uint32_t Y) {
    return X >> sparc::shiftCount(Y);
  });
}
TEST(KnownBitsFuzz, Ashr) {
  fuzzBinary("sra", KnownBits::ashr, [](uint32_t X, uint32_t Y) {
    return static_cast<uint32_t>(static_cast<int32_t>(X) >>
                                 sparc::shiftCount(Y));
  });
}

// Oversized constant shift counts, exhaustively: a count of 33 behaves
// as 1 on the machine and must do so in the transfer functions too.
TEST(KnownBitsFuzz, OversizedShiftCountsMatchMachine) {
  std::mt19937 R = rng();
  for (int Count = 32; Count < 64; ++Count) {
    KnownBits C = KnownBits::fromConstant(static_cast<uint32_t>(Count));
    for (int I = 0; I < 64; ++I) {
      uint32_t X = static_cast<uint32_t>(R());
      KnownBits A = KnownBits::fromConstant(X);
      unsigned Eff = sparc::shiftCount(Count);
      EXPECT_EQ(KnownBits::shl(A, C).constant(), X << Eff);
      EXPECT_EQ(KnownBits::lshr(A, C).constant(), X >> Eff);
      EXPECT_EQ(KnownBits::ashr(A, C).constant(),
                static_cast<uint32_t>(static_cast<int32_t>(X) >> Eff));
    }
  }
}

// --- Lattice sanity under fuzzing. ---------------------------------------

TEST(KnownBitsFuzz, MeetContainsBothSides) {
  std::mt19937 R = rng();
  for (int I = 0; I < Trials; ++I) {
    KnownBits A = randomBits(R), B = randomBits(R);
    KnownBits M = KnownBits::meet(A, B);
    EXPECT_TRUE(M.contains(randomMember(R, A)));
    EXPECT_TRUE(M.contains(randomMember(R, B)));
    EXPECT_TRUE(A.refines(M));
    EXPECT_TRUE(B.refines(M));
  }
}

TEST(KnownBitsFuzz, ResidueAndAlignment) {
  std::mt19937 R = rng();
  for (int I = 0; I < Trials; ++I) {
    KnownBits A = randomBits(R);
    uint32_t X = randomMember(R, A);
    unsigned K = A.lowKnown();
    if (K < 32)
      EXPECT_EQ(X & ((1u << K) - 1u), A.residue());
    EXPECT_EQ(X % (1u << std::min(A.alignLog2(), 31u)), 0u);
  }
}

// --- crossRefine properties. ---------------------------------------------

/// A random interval that contains \p V, sometimes unbounded on either
/// side.
void randomInterval(std::mt19937 &R, int64_t V, std::optional<int64_t> &Lo,
                    std::optional<int64_t> &Hi) {
  Lo = Hi = std::nullopt;
  if (R() & 1)
    Lo = V - static_cast<int64_t>(R() % 4096);
  if (R() & 1)
    Hi = V + static_cast<int64_t>(R() % 4096);
}

TEST(KnownBitsFuzz, CrossRefineSound) {
  // Any value in the concretization of (Bits, [Lo, Hi]) stays inside the
  // refined fact. With Exact32 the value is the signed reading of a
  // compatible pattern; without it we only test nonnegative values,
  // where pattern == value.
  std::mt19937 R = rng();
  for (int I = 0; I < Trials; ++I) {
    KnownBits B = randomBits(R);
    bool Exact32 = R() & 1;
    uint32_t Pat = randomMember(R, B);
    int64_t V = Exact32 ? static_cast<int64_t>(static_cast<int32_t>(Pat))
                        : static_cast<int64_t>(Pat & 0x7FFFFFFFu);
    if (!Exact32)
      Pat &= 0x7FFFFFFFu;
    if (!B.contains(Pat))
      continue; // Clearing bit 31 may conflict with a known one.
    std::optional<int64_t> Lo, Hi;
    randomInterval(R, V, Lo, Hi);
    BitsRange Out = crossRefine(B, Lo, Hi, Exact32);
    ASSERT_FALSE(Out.Contradiction)
        << B.str() << " V=" << V << " exact=" << Exact32;
    EXPECT_TRUE(Out.Bits.contains(Pat));
    if (Out.Lo)
      EXPECT_LE(*Out.Lo, V);
    if (Out.Hi)
      EXPECT_GE(*Out.Hi, V);
  }
}

TEST(KnownBitsFuzz, CrossRefineIdempotent) {
  std::mt19937 R = rng();
  for (int I = 0; I < Trials; ++I) {
    KnownBits B = randomBits(R);
    uint32_t Pat = randomMember(R, B);
    std::optional<int64_t> Lo, Hi;
    randomInterval(R, static_cast<int64_t>(Pat & 0x7FFFFFFFu), Lo, Hi);
    bool Exact32 = R() & 1;
    BitsRange One = crossRefine(B, Lo, Hi, Exact32);
    if (One.Contradiction)
      continue;
    BitsRange Two = crossRefine(One.Bits, One.Lo, One.Hi, Exact32);
    EXPECT_FALSE(Two.Contradiction);
    EXPECT_EQ(Two.Bits, One.Bits);
    EXPECT_EQ(Two.Lo, One.Lo);
    EXPECT_EQ(Two.Hi, One.Hi);
  }
}

TEST(KnownBitsFuzz, CrossRefineMonotone) {
  // Refinement never loses information: the result refines the input
  // bits, and the bounds only tighten.
  std::mt19937 R = rng();
  for (int I = 0; I < Trials; ++I) {
    KnownBits B = randomBits(R);
    std::optional<int64_t> Lo, Hi;
    randomInterval(R, static_cast<int64_t>(randomMember(R, B)), Lo, Hi);
    if (Lo && Hi && *Lo > *Hi)
      continue;
    BitsRange Out = crossRefine(B, Lo, Hi, R() & 1);
    if (Out.Contradiction)
      continue;
    EXPECT_TRUE(Out.Bits.refines(B));
    if (Lo) {
      ASSERT_TRUE(Out.Lo.has_value());
      EXPECT_GE(*Out.Lo, *Lo);
    }
    if (Hi) {
      ASSERT_TRUE(Out.Hi.has_value());
      EXPECT_LE(*Out.Hi, *Hi);
    }
  }
}

TEST(KnownBitsFuzz, CrossRefineDistrustsExact32OutsideInt32) {
  // An interval entirely past INT32_MAX cannot be the signed reading of
  // any 32-bit pattern — the Exact32 claim and the interval disagree
  // about what the value is (an unwrapped producer bound). The claim is
  // dropped and the facts returned unrefined; clamping them together
  // would fabricate an unreachability witness for a reachable point.
  KnownBits B{/*Zeros=*/3u, /*Ones=*/0x80000000u}; // sign bit known one
  BitsRange Out = crossRefine(B, int64_t(1) << 31,
                              (int64_t(1) << 31) + 12, /*Exact32=*/true);
  EXPECT_FALSE(Out.Contradiction);
  EXPECT_EQ(Out.Lo, int64_t(1) << 31);
  EXPECT_EQ(Out.Hi, (int64_t(1) << 31) + 12);
  EXPECT_EQ(Out.Bits, B);
}

TEST(KnownBitsFuzz, CrossRefineDetectsEmptyConcretization) {
  // Bounds incompatible with the known residue: x == 2 mod 4 has no
  // member in [4, 5].
  KnownBits B{~2u & 3u, 2u}; // low two bits known "10"
  BitsRange Out = crossRefine(B, 4, 5, /*Exact32=*/true);
  EXPECT_TRUE(Out.Contradiction);
}

} // namespace
