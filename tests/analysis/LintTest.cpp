//===- LintTest.cpp - Phase-0 lint: uninit uses, stack deltas, report -----===//

#include "analysis/Lint.h"
#include "analysis/StackDelta.h"
#include "checker/CheckContext.h"
#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::analysis;
using namespace mcsafe::checker;

namespace {

/// A program whose only path reads %o1, which nothing ever writes.
const char *UninitAsm = R"(
  add %o1,1,%o2
  retl
  nop
)";

/// %o1 is written on the fall-through path only: a may-uninit use the
/// full pipeline flags, but not a definite one — the lint must pass it.
const char *MaybeUninitAsm = R"(
  cmp %o0,0
  be join
  nop
  clr %o1
join:
  add %o1,1,%o2
  retl
  nop
)";

/// The uninitialized %o1 flows through a copy before being consumed;
/// plain gen/kill bit-vectors would miss this, the copy-aware transfer
/// must not.
const char *CopyUninitAsm = R"(
  mov %o1,%o2
  retl
  add %o2,1,%o3
)";

const char *SimplePolicy = R"(
invoke %o0 = n
constraint n >= 0
)";

struct Prepared {
  std::optional<sparc::Module> M;
  std::optional<policy::Policy> Pol;
  DiagnosticEngine Diags;
  std::optional<CheckContext> Ctx;
};

Prepared prepareSource(const std::string &Asm, const std::string &Policy) {
  Prepared P;
  std::string Error;
  P.M = sparc::assemble(Asm, &Error);
  EXPECT_TRUE(P.M.has_value()) << Error;
  P.Pol = policy::parsePolicy(Policy, &Error);
  EXPECT_TRUE(P.Pol.has_value()) << Error;
  if (P.M && P.Pol)
    P.Ctx = prepare(*P.M, *P.Pol, P.Diags);
  return P;
}

TEST(Lint, DefiniteUninitUseRejected) {
  Prepared P = prepareSource(UninitAsm, SimplePolicy);
  ASSERT_TRUE(P.Ctx.has_value()) << P.Diags.str();
  LintResult L = runLint(P.Ctx->Graph, *P.Pol, P.Ctx->EntryStore, P.Diags);
  EXPECT_TRUE(L.Rejected);
  EXPECT_GE(L.Stats.UninitUses, 1u);
  EXPECT_GE(P.Diags.countOfKind(SafetyKind::UninitializedUse), 1u);
}

TEST(Lint, MayUninitUseIsNotDefinite) {
  Prepared P = prepareSource(MaybeUninitAsm, SimplePolicy);
  ASSERT_TRUE(P.Ctx.has_value()) << P.Diags.str();
  LintResult L = runLint(P.Ctx->Graph, *P.Pol, P.Ctx->EntryStore, P.Diags);
  // One path initializes %o1, so this is not a must-violation; only the
  // full pipeline may flag it.
  EXPECT_FALSE(L.Rejected);
  EXPECT_EQ(L.Stats.UninitUses, 0u);
}

TEST(Lint, CopyOfUninitValueTracked) {
  Prepared P = prepareSource(CopyUninitAsm, SimplePolicy);
  ASSERT_TRUE(P.Ctx.has_value()) << P.Diags.str();
  LintResult L = runLint(P.Ctx->Graph, *P.Pol, P.Ctx->EntryStore, P.Diags);
  EXPECT_TRUE(L.Rejected);
}

TEST(Lint, InvocationRegistersAreInitialized) {
  // %o0 comes from the invocation specification: using it is fine.
  Prepared P = prepareSource(R"(
    add %o0,1,%o2
    retl
    nop
  )", SimplePolicy);
  ASSERT_TRUE(P.Ctx.has_value()) << P.Diags.str();
  LintResult L = runLint(P.Ctx->Graph, *P.Pol, P.Ctx->EntryStore, P.Diags);
  EXPECT_FALSE(L.Rejected);
  EXPECT_EQ(L.Stats.UninitUses, 0u);
}

TEST(Lint, DeadWriteCounted) {
  // %o5 is written and never read (and unconstrained at exit).
  Prepared P = prepareSource(R"(
    clr %o5
    add %o0,1,%o2
    retl
    nop
  )", SimplePolicy);
  ASSERT_TRUE(P.Ctx.has_value()) << P.Diags.str();
  LintResult L = runLint(P.Ctx->Graph, *P.Pol, P.Ctx->EntryStore, P.Diags);
  EXPECT_GE(L.Stats.DeadRegWrites, 1u);
}

// --- Phase attribution through SafetyChecker. ----------------------------

TEST(Lint, FastRejectSkipsTypestatePropagation) {
  SafetyChecker Checker; // Defaults: lint on, reject on.
  CheckReport R = Checker.checkSource(UninitAsm, SimplePolicy);
  ASSERT_TRUE(R.InputsOk);
  EXPECT_FALSE(R.Safe);
  EXPECT_TRUE(R.LintRejected);
  // The expensive phases never ran.
  EXPECT_EQ(R.TypestateNodeVisits, 0u);
  EXPECT_EQ(R.LocalChecks, 0u);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::UninitializedUse), 1u);
}

TEST(Lint, DisabledLintStillRejectsViaPipeline) {
  SafetyChecker::Options Opts;
  Opts.Lint = false;
  Opts.PruneDeadRegs = false;
  SafetyChecker Checker(Opts);
  CheckReport R = Checker.checkSource(UninitAsm, SimplePolicy);
  ASSERT_TRUE(R.InputsOk);
  EXPECT_FALSE(R.Safe);
  EXPECT_FALSE(R.LintRejected);
  EXPECT_GT(R.TypestateNodeVisits, 0u);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::UninitializedUse), 1u);
}

TEST(Lint, LintWithoutRejectStillRunsPipeline) {
  SafetyChecker::Options Opts;
  Opts.LintReject = false;
  SafetyChecker Checker(Opts);
  CheckReport R = Checker.checkSource(UninitAsm, SimplePolicy);
  ASSERT_TRUE(R.InputsOk);
  EXPECT_FALSE(R.Safe);
  EXPECT_FALSE(R.LintRejected);
  EXPECT_GT(R.TypestateNodeVisits, 0u);
}

TEST(Lint, ReportCarriesLintCharacteristics) {
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(R"(
    clr %o5
    add %o0,1,%o2
    retl
    nop
  )", SimplePolicy);
  ASSERT_TRUE(R.InputsOk);
  EXPECT_TRUE(R.Safe);
  EXPECT_GE(R.Chars.DeadRegWrites, 1u);
  EXPECT_EQ(R.Chars.LintUninitUses, 0u);
  EXPECT_TRUE(R.Chars.StackDeltaBounded);
}

// --- Verdict parity: lint + pruning must not flip corpus verdicts. -------

TEST(Lint, CorpusVerdictsUnchangedByLintAndPruning) {
  for (const corpus::CorpusProgram &P : corpus::corpus()) {
    SafetyChecker::Options Off;
    Off.Lint = Off.LintReject = Off.PruneDeadRegs = false;
    CheckReport ROn = SafetyChecker().checkSource(P.Asm, P.Policy);
    CheckReport ROff = SafetyChecker(Off).checkSource(P.Asm, P.Policy);
    EXPECT_EQ(ROn.Safe, ROff.Safe) << P.Name;
    EXPECT_EQ(ROn.Safe, P.ExpectSafe) << P.Name;
  }
}

// --- Stack deltas on corpus programs. ------------------------------------

TEST(StackDelta, HeapSort2NestedSaves) {
  for (const corpus::CorpusProgram &P : corpus::corpus()) {
    if (P.Name != "HeapSort2")
      continue;
    Prepared Prep = prepareSource(P.Asm, P.Policy);
    ASSERT_TRUE(Prep.Ctx.has_value()) << Prep.Diags.str();
    StackDeltaResult R = computeStackDeltas(Prep.Ctx->Graph, *Prep.Pol);
    EXPECT_TRUE(R.Converged);
    EXPECT_TRUE(R.Bounded);
    // Two nested save %sp,-96,%sp frames (sort + inlined heapify).
    EXPECT_EQ(R.MaxDown, 192);
    return;
  }
  FAIL() << "HeapSort2 not in corpus";
}

TEST(StackDelta, LeafProgramStaysAtZero) {
  for (const corpus::CorpusProgram &P : corpus::corpus()) {
    if (P.Name != "HeapSort")
      continue;
    Prepared Prep = prepareSource(P.Asm, P.Policy);
    ASSERT_TRUE(Prep.Ctx.has_value()) << Prep.Diags.str();
    StackDeltaResult R = computeStackDeltas(Prep.Ctx->Graph, *Prep.Pol);
    // The interprocedural HeapSort variant runs windowless: %sp never
    // moves.
    EXPECT_TRUE(R.Bounded);
    EXPECT_EQ(R.MaxDown, 0);
    return;
  }
  FAIL() << "HeapSort not in corpus";
}

TEST(StackDelta, ExplicitSpAdjustTracked) {
  Prepared P = prepareSource(R"(
    sub %sp,64,%sp
    add %o0,1,%o2
    add %sp,64,%sp
    retl
    nop
  )", SimplePolicy);
  ASSERT_TRUE(P.Ctx.has_value()) << P.Diags.str();
  StackDeltaResult R = computeStackDeltas(P.Ctx->Graph, *P.Pol);
  EXPECT_TRUE(R.Bounded);
  EXPECT_EQ(R.MaxDown, 64);
}

} // namespace
