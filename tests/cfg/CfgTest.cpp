//===- CfgTest.cpp - Delay slots, inlining, windows -----------------------===//

#include "cfg/Cfg.h"
#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::cfg;
using namespace mcsafe::sparc;

namespace {

std::optional<Cfg> build(const char *Source, DiagnosticEngine &Diags) {
  std::string Error;
  std::optional<Module> M = assemble(Source, &Error);
  EXPECT_TRUE(M.has_value()) << Error;
  if (!M)
    return std::nullopt;
  static std::vector<Module> Keep; // The Cfg borrows the module.
  Keep.push_back(std::move(*M));
  return Cfg::build(Keep.back(), Diags);
}

/// Counts nodes executing the instruction at 0-based module index I.
unsigned countNodesFor(const Cfg &G, uint32_t Index) {
  unsigned N = 0;
  for (const CfgNode &Node : G.nodes())
    if (Node.Kind == NodeKind::Normal && Node.InstIndex == Index)
      ++N;
  return N;
}

TEST(Cfg, StraightLine) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    clr %o0
    inc %o0
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  // clr, inc, retl, nop(delay clone), exit.
  EXPECT_EQ(G->size(), 5u);
  EXPECT_EQ(G->node(G->exit()).Kind, NodeKind::Exit);
}

TEST(Cfg, DelaySlotReplicatedOnBothEdges) {
  // The Figure 8 device: the delay-slot instruction of a conditional
  // branch appears once per outgoing edge.
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    cmp %o0,%o1
    bge 5
    clr %g3        ! delay slot: replicated
    inc %g3
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  EXPECT_EQ(countNodesFor(*G, 2), 2u); // Two clones of clr %g3.
  // The branch node has a Taken and a NotTaken edge.
  for (NodeId Id = 0; Id < G->size(); ++Id) {
    const CfgNode &N = G->node(Id);
    if (N.Kind != NodeKind::Normal || N.InstIndex != 1)
      continue;
    ASSERT_EQ(N.Succs.size(), 2u);
    EXPECT_TRUE((N.Succs[0].Kind == EdgeKind::Taken &&
                 N.Succs[1].Kind == EdgeKind::NotTaken) ||
                (N.Succs[0].Kind == EdgeKind::NotTaken &&
                 N.Succs[1].Kind == EdgeKind::Taken));
  }
}

TEST(Cfg, AnnulledBranchSkipsDelayOnFallThrough) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    cmp %o0,%o1
    bge,a 5
    clr %g3        ! executes only when taken
    inc %g3
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  EXPECT_EQ(countNodesFor(*G, 2), 1u); // One clone only (taken path).
}

TEST(Cfg, AnnulledBaSkipsDelayEntirely) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    ba,a 4
    clr %g3        ! never executes
    nop
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  EXPECT_EQ(countNodesFor(*G, 1), 0u);
}

TEST(Cfg, LocalCallInlinesPerSite) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    call helper
    nop
    call helper
    nop
    retl
    nop
  helper:
    inc %o0
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  // The helper body (inc at module index 6) is cloned per call site.
  EXPECT_EQ(countNodesFor(*G, 6), 2u);
}

TEST(Cfg, RecursionRejected) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
  self:
    call self
    nop
    retl
    nop
  )", Diags);
  EXPECT_FALSE(G.has_value());
  EXPECT_TRUE(Diags.hasFatal());
  EXPECT_NE(Diags.str().find("recursive"), std::string::npos);
}

TEST(Cfg, TrustedCallGetsSummaryNode) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    call somehostfn
    nop
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  unsigned Summaries = 0;
  for (const CfgNode &N : G->nodes())
    if (N.Kind == NodeKind::TrustedCall) {
      ++Summaries;
      EXPECT_EQ(N.TrustedCallee, "somehostfn");
    }
  EXPECT_EQ(Summaries, 1u);
}

TEST(Cfg, WindowDepthsAssigned) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    save %sp,-96,%sp
    call helper
    nop
    ret
    restore
  helper:
    save %sp,-96,%sp
    ret
    restore
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  int32_t MaxDepth = 0;
  for (const CfgNode &N : G->nodes())
    MaxDepth = std::max(MaxDepth, N.WindowDepth);
  // Entry save -> depth 1; helper save -> depth 2.
  EXPECT_EQ(MaxDepth, 2);
  EXPECT_EQ(G->node(G->entry()).WindowDepth, 0);
}

TEST(Cfg, UnderflowingRestoreRejected) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    restore
    retl
    nop
  )", Diags);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Diags.str().find("restore without a matching save"),
            std::string::npos);
}

TEST(Cfg, MissingDelaySlotRejected) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build("retl\n", Diags);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Diags.str().find("delay"), std::string::npos);
}

TEST(Cfg, BranchInDelaySlotRejected) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    ba 3
    ba 3
    retl
    nop
  )", Diags);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Diags.str().find("delay slot"), std::string::npos);
}

TEST(Cfg, IndirectJumpRejected) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    jmpl %o0+0,%g0
    nop
    retl
    nop
  )", Diags);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Diags.str().find("indirect"), std::string::npos);
}

TEST(Cfg, FallOffEndRejected) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build("clr %o0\nclr %o1\n", Diags);
  EXPECT_FALSE(G.has_value());
  EXPECT_NE(Diags.str().find("past the end"), std::string::npos);
}

TEST(Cfg, FuncEntryTracksInlining) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    call helper
    nop
    retl
    nop
  helper:
    save %sp,-96,%sp
    ret
    restore
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  for (const CfgNode &N : G->nodes()) {
    if (N.Kind == NodeKind::Normal && N.InstIndex >= 4) {
      EXPECT_EQ(N.FuncEntry, 4u);
    } else if (N.Kind == NodeKind::Normal) {
      EXPECT_EQ(N.FuncEntry, 0u);
    }
  }
}

TEST(Cfg, ReversePostOrderStartsAtEntry) {
  DiagnosticEngine Diags;
  std::optional<Cfg> G = build(R"(
    clr %o0
    cmp %o0,%o1
    bl 2
    nop
    retl
    nop
  )", Diags);
  ASSERT_TRUE(G.has_value()) << Diags.str();
  std::vector<NodeId> Rpo = G->reversePostOrder();
  ASSERT_FALSE(Rpo.empty());
  EXPECT_EQ(Rpo.front(), G->entry());
  // Every reachable node appears exactly once.
  EXPECT_EQ(Rpo.size(), static_cast<size_t>(G->size()));
}

} // namespace
