//===- DominatorsTest.cpp -------------------------------------------------===//

#include "cfg/Dominators.h"
#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::cfg;
using namespace mcsafe::sparc;

namespace {

struct Built {
  Module M;
  std::optional<Cfg> G;
  DiagnosticEngine Diags;
};

std::unique_ptr<Built> build(const char *Source) {
  auto B = std::make_unique<Built>();
  std::string Error;
  std::optional<Module> M = assemble(Source, &Error);
  EXPECT_TRUE(M.has_value()) << Error;
  B->M = std::move(*M);
  B->G = Cfg::build(B->M, B->Diags);
  EXPECT_TRUE(B->G.has_value()) << B->Diags.str();
  return B;
}

/// First node executing the given 0-based instruction index.
NodeId nodeFor(const Cfg &G, uint32_t Index) {
  for (NodeId Id = 0; Id < G.size(); ++Id)
    if (G.node(Id).Kind == NodeKind::Normal &&
        G.node(Id).InstIndex == Index)
      return Id;
  return InvalidNode;
}

TEST(Dominators, EntryDominatesEverything) {
  auto B = build(R"(
    cmp %o0,%o1
    bge 5
    nop
    inc %o0
    retl
    nop
  )");
  DominatorTree Dom(*B->G);
  for (NodeId Id = 0; Id < B->G->size(); ++Id) {
    if (Dom.rpoIndex(Id) != UINT32_MAX) {
      EXPECT_TRUE(Dom.dominates(B->G->entry(), Id)) << "node " << Id;
    }
  }
}

TEST(Dominators, DiamondJoinDominatedByFork) {
  auto B = build(R"(
    cmp %o0,%o1
    bge 5
    nop
    inc %o0        ! then-side
    dec %o0        ! join (the bge target)
    retl
    nop
  )");
  DominatorTree Dom(*B->G);
  NodeId Fork = nodeFor(*B->G, 1);
  NodeId Then = nodeFor(*B->G, 3);
  NodeId Join = nodeFor(*B->G, 4);
  ASSERT_NE(Fork, InvalidNode);
  ASSERT_NE(Join, InvalidNode);
  EXPECT_TRUE(Dom.dominates(Fork, Join));
  EXPECT_TRUE(Dom.dominates(Fork, Then));
  EXPECT_FALSE(Dom.dominates(Then, Join));
  EXPECT_FALSE(Dom.dominates(Join, Then));
}

TEST(Dominators, DominatesIsReflexive) {
  auto B = build("retl\nnop\n");
  DominatorTree Dom(*B->G);
  EXPECT_TRUE(Dom.dominates(B->G->entry(), B->G->entry()));
}

TEST(Dominators, LoopHeaderDominatesBody) {
  auto B = build(R"(
    clr %g3
    cmp %g3,%o1
    bge 7
    nop
    inc %g3
    ba 2
    nop
    retl
    nop
  )");
  DominatorTree Dom(*B->G);
  NodeId Header = nodeFor(*B->G, 1);
  NodeId Body = nodeFor(*B->G, 4);
  ASSERT_NE(Header, InvalidNode);
  ASSERT_NE(Body, InvalidNode);
  EXPECT_TRUE(Dom.dominates(Header, Body));
  EXPECT_FALSE(Dom.dominates(Body, Header));
}

TEST(Dominators, IdomChainReachesEntry) {
  auto B = build(R"(
    clr %o0
    inc %o0
    retl
    nop
  )");
  DominatorTree Dom(*B->G);
  NodeId Cur = B->G->exit();
  unsigned Steps = 0;
  while (Cur != B->G->entry() && Steps < 100) {
    Cur = Dom.idom(Cur);
    ++Steps;
  }
  EXPECT_EQ(Cur, B->G->entry());
}

} // namespace
