//===- LoopInfoTest.cpp ---------------------------------------------------===//

#include "cfg/LoopInfo.h"
#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::cfg;
using namespace mcsafe::sparc;

namespace {

struct Built {
  Module M;
  std::optional<Cfg> G;
  std::unique_ptr<DominatorTree> Dom;
  std::unique_ptr<LoopInfo> Loops;
  DiagnosticEngine Diags;
};

std::unique_ptr<Built> build(const char *Source) {
  auto B = std::make_unique<Built>();
  std::string Error;
  std::optional<Module> M = assemble(Source, &Error);
  EXPECT_TRUE(M.has_value()) << Error;
  B->M = std::move(*M);
  B->G = Cfg::build(B->M, B->Diags);
  EXPECT_TRUE(B->G.has_value()) << B->Diags.str();
  B->Dom = std::make_unique<DominatorTree>(*B->G);
  B->Loops = std::make_unique<LoopInfo>(*B->G, *B->Dom);
  return B;
}

TEST(LoopInfo, AcyclicHasNoLoops) {
  auto B = build(R"(
    cmp %o0,%o1
    bge 5
    nop
    inc %o0
    retl
    nop
  )");
  EXPECT_TRUE(B->Loops->isReducible());
  EXPECT_TRUE(B->Loops->loops().empty());
  EXPECT_EQ(B->Loops->innerLoopCount(), 0u);
}

TEST(LoopInfo, SingleLoopDetected) {
  auto B = build(R"(
    clr %g3
    cmp %g3,%o1
    bge 7
    nop
    inc %g3
    ba 2
    nop
    retl
    nop
  )");
  EXPECT_TRUE(B->Loops->isReducible());
  ASSERT_EQ(B->Loops->loops().size(), 1u);
  const Loop &L = B->Loops->loops()[0];
  EXPECT_EQ(B->G->node(L.Header).InstIndex, 1u);
  EXPECT_FALSE(L.Latches.empty());
  EXPECT_EQ(L.Parent, -1);
  EXPECT_EQ(L.Depth, 1u);
  // Header is inside its own loop.
  EXPECT_EQ(B->Loops->innermostLoop(L.Header),
            0);
}

TEST(LoopInfo, NestedLoopsHaveParentLinks) {
  auto B = build(R"(
    clr %o5          ! i = 0
  outer:
    cmp %o5,%o1
    bge done
    nop
    clr %g4          ! j = 0
  inner:
    cmp %g4,%o2
    bge iout
    nop
    inc %g4
    ba inner
    nop
  iout:
    inc %o5
    ba outer
    nop
  done:
    retl
    nop
  )");
  EXPECT_TRUE(B->Loops->isReducible());
  ASSERT_EQ(B->Loops->loops().size(), 2u);
  EXPECT_EQ(B->Loops->innerLoopCount(), 1u);
  // Loops are sorted smallest-first: [0] is the inner loop.
  const Loop &Inner = B->Loops->loops()[0];
  const Loop &Outer = B->Loops->loops()[1];
  EXPECT_LT(Inner.Body.size(), Outer.Body.size());
  EXPECT_EQ(Inner.Parent, 1);
  EXPECT_EQ(Outer.Parent, -1);
  EXPECT_EQ(Inner.Depth, 2u);
  EXPECT_EQ(Outer.Depth, 1u);
  // The outer loop contains the inner header.
  EXPECT_TRUE(Outer.contains(Inner.Header));
}

TEST(LoopInfo, BackEdgeIdentification) {
  auto B = build(R"(
  top:
    cmp %o0,%o1
    bge out
    nop
    inc %o0
    ba top
    nop
  out:
    retl
    nop
  )");
  ASSERT_EQ(B->Loops->loops().size(), 1u);
  const Loop &L = B->Loops->loops()[0];
  for (NodeId Latch : L.Latches)
    EXPECT_TRUE(B->Loops->isBackEdge(Latch, L.Header));
  EXPECT_FALSE(B->Loops->isBackEdge(L.Header, L.Header));
}

TEST(LoopInfo, SelfLoopIsItsOwnLatch) {
  auto B = build(R"(
    clr %o0
  spin:
    cmp %o0,%o1
    bl spin
    inc %o0
    retl
    nop
  )");
  // The branch's taken edge goes through the delay clone back to the
  // header; a natural loop all the same.
  EXPECT_TRUE(B->Loops->isReducible());
  ASSERT_EQ(B->Loops->loops().size(), 1u);
}

TEST(LoopInfo, InnermostLoopOfOutsideNodeIsNone) {
  auto B = build(R"(
    clr %g3
  top:
    cmp %g3,%o1
    bge out
    nop
    inc %g3
    ba top
    nop
  out:
    retl
    nop
  )");
  EXPECT_EQ(B->Loops->innermostLoop(B->G->entry()), -1);
  EXPECT_EQ(B->Loops->innermostLoop(B->G->exit()), -1);
}

} // namespace
