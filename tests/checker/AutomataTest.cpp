//===- AutomataTest.cpp - Security-automaton checking ---------------------===//
//
// The Section 1 extension: "a security automaton ... detects a
// security-policy violation whenever [it] read[s] a symbol for which the
// automaton's current state has no transition defined."
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "policy/PolicyParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

// A start/stop protocol: the timer must be started before it is stopped,
// must not be started twice, and must be stopped before returning.
const char *TimerProtocolPolicy = R"(
abstract timer size 40 align 8
loc tmr : timer
region H { tmr }
invoke %o0 = &tmr
invoke %o1 = n
trusted start_timer {
}
trusted stop_timer {
}
automaton timer_protocol {
  state idle
  state running
  start idle
  transition idle -> running on start_timer
  transition running -> idle on stop_timer
  final idle
}
)";

CheckReport check(const char *Asm) {
  SafetyChecker Checker;
  return Checker.checkSource(Asm, TimerProtocolPolicy);
}

TEST(Automata, BalancedProtocolVerifies) {
  CheckReport R = check(R"(
  call start_timer
  nop
  call stop_timer
  nop
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(Automata, DoubleStartCaught) {
  CheckReport R = check(R"(
  call start_timer
  nop
  call start_timer
  nop
  call stop_timer
  nop
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::Protocol), 1u);
}

TEST(Automata, StopWithoutStartCaught) {
  CheckReport R = check(R"(
  call stop_timer
  nop
  retl
  nop
)");
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::Protocol), 1u);
}

TEST(Automata, ReturnWhileRunningCaught) {
  CheckReport R = check(R"(
  call start_timer
  nop
  retl
  nop
)");
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::Protocol), 1u);
}

TEST(Automata, ConditionalPathsJoin) {
  // One path starts the timer, the other does not: at the join the
  // automaton may be in either state, so the stop is fine from
  // "running" but has no transition from "idle".
  CheckReport R = check(R"(
  cmp %o1,0
  ble skip
  nop
  call start_timer
  nop
skip:
  call stop_timer
  nop
  retl
  nop
)");
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::Protocol), 1u);
}

TEST(Automata, ProtocolInLoopVerifies) {
  // start/stop balanced inside a loop: state returns to idle each
  // iteration, so the union-dataflow stabilizes at {idle} at the header.
  // The loop bound lives in %g4, which survives the calls.
  CheckReport R = check(R"(
  mov %o1,%g4
  clr %g3
loop:
  cmp %g3,%g4
  bge done
  nop
  call start_timer
  nop
  call stop_timer
  nop
  inc %g3
  ba loop
  nop
done:
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(Automata, UnbalancedLoopCaught) {
  // Start inside the loop without a stop: the second iteration starts
  // from "running".
  CheckReport R = check(R"(
  clr %g3
loop:
  cmp %g3,%o1
  bge done
  nop
  call start_timer
  nop
  inc %g3
  ba loop
  nop
done:
  call stop_timer
  nop
  retl
  nop
)");
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::Protocol), 1u);
}

TEST(Automata, EventsOutsideAlphabetIgnored) {
  const char *Policy = R"(
trusted ping {
}
trusted start_timer {
}
trusted stop_timer {
}
automaton proto {
  state idle
  state running
  start idle
  transition idle -> running on start_timer
  transition running -> idle on stop_timer
}
)";
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(R"(
  call ping
  nop
  call start_timer
  nop
  call ping
  nop
  call stop_timer
  nop
  retl
  nop
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(Automata, ParserRoundTrip) {
  std::string Error;
  std::optional<policy::Policy> P = policy::parsePolicy(R"(
automaton a {
  state s0
  state s1
  start s0
  transition s0 -> s1 on f
  transition s1 -> s0 on g
  final s0, s1
}
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  ASSERT_EQ(P->Automata.size(), 1u);
  const policy::Policy::Automaton &A = P->Automata[0];
  EXPECT_EQ(A.Name, "a");
  EXPECT_EQ(A.States.size(), 2u);
  EXPECT_EQ(A.Start, 0u);
  ASSERT_EQ(A.Transitions.size(), 2u);
  EXPECT_EQ(A.Transitions[0].Event, "f");
  EXPECT_EQ(A.Final.size(), 2u);
  EXPECT_TRUE(A.observes("f"));
  EXPECT_FALSE(A.observes("h"));
}

TEST(Automata, ParserErrors) {
  std::string Error;
  EXPECT_FALSE(policy::parsePolicy("automaton a { }\n", &Error).has_value());
  EXPECT_NE(Error.find("no states"), std::string::npos);
  EXPECT_FALSE(
      policy::parsePolicy("automaton a { transition x > y on f }\n", &Error)
          .has_value());
}

} // namespace
