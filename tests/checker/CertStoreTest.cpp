//===- CertStoreTest.cpp - Persistent certificate store -------------------===//
//
// The store's contract: a warm hit replays a report identical to the
// cold run's; anything less than a fully validated certificate — missing
// file, truncation, bit flips, version mismatch, stale inputs, failed
// revalidation — degrades to a cold run (correct verdict, fresh
// certificate), never to a crash or an unearned SAFE.
//
//===----------------------------------------------------------------------===//

#include "checker/CertStore.h"
#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

/// A fresh store directory per test, removed on destruction.
struct TempStore {
  std::string Dir;
  explicit TempStore(const char *Tag) {
    Dir = (std::filesystem::temp_directory_path() /
           (std::string("mcsafe-certstore-") + Tag + "-" +
            std::to_string(::getpid())))
              .string();
    std::filesystem::remove_all(Dir);
  }
  ~TempStore() { std::filesystem::remove_all(Dir); }
};

/// Renders the parts of a report that byte-compares meaningfully (the
/// full diagnostic text plus every deterministic counter).
std::string reportFingerprint(const CheckReport &R) {
  std::string S;
  S += "verdict=" + std::string(verdictName(R.Verdict));
  S += " safe=" + std::to_string(R.Safe);
  S += " lint=" + std::to_string(R.LintRejected);
  S += " diags=" + R.Diags.str();
  for (const CheckFailure &F : R.Failures)
    S += " failure=" + F.str();
  S += " insts=" + std::to_string(R.Chars.Instructions);
  S += " conds=" + std::to_string(R.Chars.GlobalConditions);
  S += " visits=" + std::to_string(R.TypestateNodeVisits);
  S += " local=" + std::to_string(R.LocalChecks) + "/" +
       std::to_string(R.LocalViolations);
  S += " proved=" + std::to_string(R.Global.ObligationsProved);
  S += " failed=" + std::to_string(R.Global.ObligationsFailed);
  S += " quick=" + std::to_string(R.Global.QuickDischarges);
  S += " inv=" + std::to_string(R.Global.InvariantsSynthesized);
  S += " iter=" + std::to_string(R.Global.IterationsRun);
  S += " validity=" + std::to_string(R.ProverStats.ValidityQueries);
  S += " sat=" + std::to_string(R.ProverStats.SatQueries);
  return S;
}

CheckReport runWithStore(const CorpusProgram &P, CertStore *Store) {
  SafetyChecker::Options Opts;
  Opts.Certs = Store;
  SafetyChecker Checker(Opts);
  return Checker.checkSource(P.Asm, P.Policy);
}

TEST(CertStore, WarmHitReplaysTheColdReportExactly) {
  TempStore T("warm");
  CertStore Store(T.Dir);
  const CorpusProgram &P = corpusProgram("Sum");

  CheckReport Cold = runWithStore(P, &Store);
  ASSERT_TRUE(Cold.Safe) << Cold.Diags.str();
  EXPECT_EQ(Store.stats().Misses, 1u);
  EXPECT_EQ(Store.stats().Writes, 1u);

  CheckReport Warm = runWithStore(P, &Store);
  EXPECT_EQ(Store.stats().Hits, 1u);
  EXPECT_EQ(Store.stats().RevalidateFailed, 0u);
  EXPECT_EQ(reportFingerprint(Cold), reportFingerprint(Warm));
}

TEST(CertStore, UnsafeVerdictsAreCertifiedToo) {
  // A certificate is a record of a deterministic outcome, not a proof of
  // safety — UNSAFE replays as UNSAFE (same diagnostics), never SAFE.
  TempStore T("unsafe");
  CertStore Store(T.Dir);
  const CorpusProgram *Unsafe = nullptr;
  for (const CorpusProgram &P : mcsafe::corpus::corpus())
    if (!P.ExpectSafe) {
      Unsafe = &P;
      break;
    }
  ASSERT_NE(Unsafe, nullptr);

  CheckReport Cold = runWithStore(*Unsafe, &Store);
  ASSERT_FALSE(Cold.Safe);
  ASSERT_TRUE(Cold.Failures.empty())
      << "corpus UNSAFE program should fail cleanly";
  CheckReport Warm = runWithStore(*Unsafe, &Store);
  EXPECT_EQ(Store.stats().Hits, 1u);
  EXPECT_FALSE(Warm.Safe);
  EXPECT_EQ(reportFingerprint(Cold), reportFingerprint(Warm));
}

TEST(CertStore, EveryTruncationDegradesToCold) {
  TempStore T("trunc");
  const CorpusProgram &P = corpusProgram("Sum");
  std::string Config;
  uint64_t Key;
  std::string Bytes;
  {
    CertStore Store(T.Dir);
    CheckReport Cold = runWithStore(P, &Store);
    ASSERT_TRUE(Cold.Safe);
    SafetyChecker::Options Opts;
    Config = canonicalCheckConfig(Opts);
    Key = CertStore::procedureKey(P.Asm, P.Policy, Config);
    std::ifstream In(Store.pathFor(Key), std::ios::binary);
    ASSERT_TRUE(In.is_open());
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
    ASSERT_GT(Bytes.size(), 0u);
  }
  // Every proper prefix must be Corrupt (or Miss for length 0 is still
  // fine as long as it is not a Hit) — and a full check over the
  // truncated store must still conclude SAFE via the cold path. Sampled
  // stride keeps the test fast; the serializer fuzz covers every offset.
  for (size_t Len = 0; Len < Bytes.size();
       Len += (Bytes.size() / 64) + 1) {
    CertStore Store(T.Dir);
    {
      std::ofstream Out(Store.pathFor(Key),
                        std::ios::binary | std::ios::trunc);
      Out.write(Bytes.data(), static_cast<std::streamsize>(Len));
    }
    Certificate C;
    EXPECT_EQ(Store.load(Key, P.Asm, P.Policy, Config, C),
              CertStore::LoadOutcome::Corrupt)
        << "prefix " << Len;
    CheckReport R = runWithStore(P, &Store);
    EXPECT_TRUE(R.Safe) << "prefix " << Len;
    // Two corrupt loads: the explicit probe above plus the checker's own.
    EXPECT_EQ(Store.stats().Corrupt, 2u);
    EXPECT_GE(Store.stats().Writes, 1u); // Fresh certificate rewritten.
  }
}

TEST(CertStore, BitFlipsNeverYieldAHit) {
  TempStore T("flip");
  const CorpusProgram &P = corpusProgram("Sum");
  CertStore Store(T.Dir);
  CheckReport Cold = runWithStore(P, &Store);
  ASSERT_TRUE(Cold.Safe);
  std::string Config = canonicalCheckConfig(SafetyChecker::Options{});
  uint64_t Key = CertStore::procedureKey(P.Asm, P.Policy, Config);
  std::string Bytes;
  {
    std::ifstream In(Store.pathFor(Key), std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
  }
  for (size_t Pos = 0; Pos < Bytes.size();
       Pos += (Bytes.size() / 96) + 1) {
    std::string Mut = Bytes;
    Mut[Pos] = static_cast<char>(Mut[Pos] ^ 0x20);
    {
      std::ofstream Out(Store.pathFor(Key),
                        std::ios::binary | std::ios::trunc);
      Out.write(Mut.data(), static_cast<std::streamsize>(Mut.size()));
    }
    Certificate C;
    CertStore::LoadOutcome O = Store.load(Key, P.Asm, P.Policy, Config, C);
    // The payload digest in the header makes any payload flip Corrupt; a
    // header flip is Corrupt (bad magic/version/size) or at worst Stale
    // (flipped key field). Never a Hit.
    EXPECT_NE(O, CertStore::LoadOutcome::Hit) << "pos " << Pos;
  }
}

TEST(CertStore, VersionMismatchIsCorrupt) {
  TempStore T("version");
  const CorpusProgram &P = corpusProgram("Sum");
  CertStore Store(T.Dir);
  ASSERT_TRUE(runWithStore(P, &Store).Safe);
  std::string Config = canonicalCheckConfig(SafetyChecker::Options{});
  uint64_t Key = CertStore::procedureKey(P.Asm, P.Policy, Config);
  std::string Bytes;
  {
    std::ifstream In(Store.pathFor(Key), std::ios::binary);
    Bytes.assign(std::istreambuf_iterator<char>(In),
                 std::istreambuf_iterator<char>());
  }
  // Header layout: magic[4], then the u32 format version.
  ASSERT_GT(Bytes.size(), 8u);
  Bytes[4] = static_cast<char>(CertStore::FormatVersion + 1);
  {
    std::ofstream Out(Store.pathFor(Key), std::ios::binary | std::ios::trunc);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  Certificate C;
  EXPECT_EQ(Store.load(Key, P.Asm, P.Policy, Config, C),
            CertStore::LoadOutcome::Corrupt);
}

TEST(CertStore, DifferentConfigMissesAndDifferentInputsAreStale) {
  TempStore T("stale");
  const CorpusProgram &P = corpusProgram("Sum");
  CertStore Store(T.Dir);
  ASSERT_TRUE(runWithStore(P, &Store).Safe);

  // A different config digests to a different key: plain miss.
  SafetyChecker::Options NoLint;
  NoLint.Lint = false;
  std::string AltConfig = canonicalCheckConfig(NoLint);
  std::string Config = canonicalCheckConfig(SafetyChecker::Options{});
  ASSERT_NE(AltConfig, Config);
  uint64_t AltKey = CertStore::procedureKey(P.Asm, P.Policy, AltConfig);
  Certificate C;
  EXPECT_EQ(Store.load(AltKey, P.Asm, P.Policy, AltConfig, C),
            CertStore::LoadOutcome::Miss);

  // Forcing the wrong key onto different inputs (a simulated digest
  // collision) is detected by the stored-byte comparison: Stale.
  uint64_t Key = CertStore::procedureKey(P.Asm, P.Policy, Config);
  std::string OtherAsm = std::string(P.Asm) + "\n! trailing comment\n";
  EXPECT_EQ(Store.load(Key, OtherAsm, P.Policy, Config, C),
            CertStore::LoadOutcome::Stale);
  EXPECT_EQ(Store.stats().Stale, 1u);
}

TEST(CertStore, RevalidationFailureFallsBackCold) {
  TempStore T("reval");
  const CorpusProgram &P = corpusProgram("Sum");
  CertStore Store(T.Dir);
  ASSERT_TRUE(runWithStore(P, &Store).Safe);

  // Load the genuine certificate and corrupt one Unsat witness into a
  // tautologically *unsatisfiable-looking but satisfiable* query: flip
  // an Unsat witness's formula to "true" (satisfiable), which must fail
  // re-discharge.
  std::string Config = canonicalCheckConfig(SafetyChecker::Options{});
  uint64_t Key = CertStore::procedureKey(P.Asm, P.Policy, Config);
  Certificate C;
  ASSERT_EQ(Store.load(Key, P.Asm, P.Policy, Config, C),
            CertStore::LoadOutcome::Hit);
  bool Tampered = false;
  for (QueryRecord &W : C.Witnesses)
    if (W.Outcome.Result == SatResult::Unsat) {
      W.F = Formula::mkTrue(); // sat — revalidation must reject.
      Tampered = true;
      break;
    }
  ASSERT_TRUE(Tampered) << "a Safe run must carry Unsat witnesses";
  SafetyChecker::Options Opts;
  EXPECT_FALSE(revalidateCertificate(C, Opts));

  // And the untampered one still revalidates.
  Certificate C2;
  ASSERT_EQ(Store.load(Key, P.Asm, P.Policy, Config, C2),
            CertStore::LoadOutcome::Hit);
  EXPECT_TRUE(revalidateCertificate(C2, Opts));
}

TEST(CertStore, BudgetDriftFailsRevalidation) {
  // A witness recorded under a different query budget must not be
  // accepted under the current one (the outcome could legitimately
  // differ), even though the formulas are identical.
  TempStore T("budget");
  const CorpusProgram &P = corpusProgram("Sum");
  CertStore Store(T.Dir);
  ASSERT_TRUE(runWithStore(P, &Store).Safe);
  std::string Config = canonicalCheckConfig(SafetyChecker::Options{});
  uint64_t Key = CertStore::procedureKey(P.Asm, P.Policy, Config);
  Certificate C;
  ASSERT_EQ(Store.load(Key, P.Asm, P.Policy, Config, C),
            CertStore::LoadOutcome::Hit);
  ASSERT_FALSE(C.Witnesses.empty());
  C.Witnesses.front().Budget.OmegaMaxSteps += 1;
  EXPECT_FALSE(revalidateCertificate(C, SafetyChecker::Options{}));
}

TEST(CertStore, UnwritableDirectoryCountsWriteFailuresAndStaysCold) {
  // A store rooted at a path that exists as a *file* can neither be
  // created nor written: every check must still complete cold and the
  // failures must be counted, not thrown.
  TempStore T("unwritable");
  {
    std::ofstream Block(T.Dir); // Occupy the path with a regular file.
    Block << "not a directory";
  }
  CertStore Store(T.Dir);
  const CorpusProgram &P = corpusProgram("Sum");
  CheckReport R = runWithStore(P, &Store);
  EXPECT_TRUE(R.Safe);
  EXPECT_EQ(Store.stats().Hits, 0u);
  EXPECT_GE(Store.stats().WriteFailures, 1u);
}

TEST(CertStore, ConcurrentWritersOfTheSameKeyNeverCorruptTheStore) {
  // The save path writes to a unique temp file and renames into place.
  // Before temp names carried a pid+serial, every writer of a key shared
  // ONE temp path — concurrent saves interleaved their writes into it
  // and the rename could publish a spliced certificate. Hammer one key
  // from many threads, then prove the store replays a clean report.
  TempStore T("race");
  const CorpusProgram &P = corpusProgram("Sum");

  const unsigned NThreads = 8;
  const unsigned Rounds = 16;
  std::vector<std::thread> Threads;
  for (unsigned I = 0; I < NThreads; ++I)
    Threads.emplace_back([&] {
      // Each thread has its own CertStore over the SAME directory — the
      // daemon's many-workers-one-store shape, plus the multi-process
      // shape (separate stat counters, shared files).
      CertStore Store(T.Dir);
      for (unsigned R = 0; R < Rounds; ++R) {
        // Delete the published certificates (keeping the directory) so
        // every round goes cold and races its save against the others.
        std::error_code Ec;
        for (const auto &E :
             std::filesystem::directory_iterator(T.Dir, Ec))
          if (E.path().extension() == ".mcert")
            std::filesystem::remove(E.path(), Ec);
        CheckReport Rep = runWithStore(P, &Store);
        EXPECT_EQ(Rep.Verdict, CheckVerdict::Safe);
      }
    });
  for (std::thread &Th : Threads)
    Th.join();

  // No temp-file droppings survive the stampede...
  if (std::filesystem::exists(T.Dir))
    for (const auto &E : std::filesystem::directory_iterator(T.Dir))
      EXPECT_EQ(E.path().filename().string().find(".tmp"),
                std::string::npos)
          << "leftover temp file: " << E.path();

  // ...and whatever certificate won the last rename is whole: a warm
  // run replays the cold fingerprint exactly.
  CertStore Fresh(T.Dir);
  CheckReport Cold = runWithStore(P, &Fresh);
  CheckReport Warm = runWithStore(P, &Fresh);
  EXPECT_EQ(Fresh.stats().Corrupt, 0u);
  EXPECT_EQ(reportFingerprint(Cold), reportFingerprint(Warm));
}

TEST(CertStore, MetricsPublishCoversEveryCounter) {
  TempStore T("metrics");
  CertStore Store(T.Dir);
  const CorpusProgram &P = corpusProgram("Sum");
  runWithStore(P, &Store); // miss + write
  runWithStore(P, &Store); // hit
  support::MetricsRegistry Reg;
  Store.publish(Reg);
  EXPECT_EQ(Reg.value("cert/store/misses").value_or(-1), 1);
  EXPECT_EQ(Reg.value("cert/store/hits").value_or(-1), 1);
  EXPECT_EQ(Reg.value("cert/store/writes").value_or(-1), 1);
  EXPECT_EQ(Reg.value("cert/store/corrupt").value_or(-1), 0);
  EXPECT_EQ(Reg.value("cert/store/stale").value_or(-1), 0);
  EXPECT_EQ(Reg.value("cert/store/revalidate_failed").value_or(-1), 0);
  EXPECT_EQ(Reg.value("cert/store/write_failures").value_or(-1), 0);
}

} // namespace
