//===- FailSoundnessTest.cpp ----------------------------------------------===//
//
// Fail-sound degradation: when a resource budget expires the checker
// must answer Unknown — never crash, never hang, and never claim Safe —
// while violations it has already found stand. Step-budget exhaustion
// must be deterministic.
//
//===----------------------------------------------------------------------===//

#include "checker/CheckContext.h"
#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "sparc/AsmParser.h"
#include "support/Governor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

std::vector<std::string> failureStrings(const CheckReport &R) {
  std::vector<std::string> S;
  for (const CheckFailure &F : R.Failures)
    S.push_back(F.str());
  return S;
}

TEST(FailSoundness, StepBudgetDegradesToUnknown) {
  const CorpusProgram &P = corpusProgram("Sum");
  SafetyChecker::Options Opts;
  Opts.Limits.ProverSteps = 2;
  SafetyChecker Checker(Opts);
  CheckReport R = Checker.checkSource(P.Asm, P.Policy);
  ASSERT_TRUE(R.InputsOk);
  EXPECT_FALSE(R.Safe);
  EXPECT_EQ(R.Verdict, CheckVerdict::Unknown);
  ASSERT_FALSE(R.Failures.empty());
  bool SawExhausted = false;
  for (const CheckFailure &F : R.Failures)
    SawExhausted |= F.Kind == FailureKind::ResourceExhausted;
  EXPECT_TRUE(SawExhausted);
}

TEST(FailSoundness, StepBudgetExhaustionIsDeterministic) {
  const CorpusProgram &P = corpusProgram("Hash");
  auto Run = [&] {
    SafetyChecker::Options Opts;
    Opts.Limits.ProverSteps = 7;
    SafetyChecker Checker(Opts);
    return Checker.checkSource(P.Asm, P.Policy);
  };
  CheckReport A = Run(), B = Run();
  EXPECT_EQ(A.Verdict, B.Verdict);
  EXPECT_EQ(failureStrings(A), failureStrings(B));
}

TEST(FailSoundness, NeverSafeUnderABudgetThatExpired) {
  // Whatever the budget, the verdict for a safe program is either SAFE
  // (budget sufficed) or UNKNOWN (it did not) — never UNSAFE, and SAFE
  // only without a resource failure on record.
  const CorpusProgram &P = corpusProgram("Sum");
  for (uint64_t Steps : {1, 3, 10, 50, 1000000}) {
    SafetyChecker::Options Opts;
    Opts.Limits.ProverSteps = Steps;
    SafetyChecker Checker(Opts);
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    ASSERT_TRUE(R.InputsOk);
    EXPECT_NE(R.Verdict, CheckVerdict::Unsafe) << "steps=" << Steps;
    if (R.Verdict == CheckVerdict::Safe) {
      EXPECT_TRUE(R.Safe);
      for (const CheckFailure &F : R.Failures)
        EXPECT_NE(F.Kind, FailureKind::ResourceExhausted)
            << "steps=" << Steps << ": " << F.str();
    } else {
      EXPECT_EQ(R.Verdict, CheckVerdict::Unknown) << "steps=" << Steps;
      EXPECT_FALSE(R.Safe);
    }
  }
}

TEST(FailSoundness, ViolationsDominateExhaustion) {
  // A program with known violations must stay UNSAFE even when the
  // budget dies after the violations were found: "unsafe" is a sound
  // answer, discarding it for Unknown would lose information.
  const CorpusProgram &P = corpusProgram("StackSmashing");
  SafetyChecker::Options Full;
  SafetyChecker FullChecker(Full);
  CheckReport Baseline = FullChecker.checkSource(P.Asm, P.Policy);
  ASSERT_EQ(Baseline.Verdict, CheckVerdict::Unsafe);

  for (uint64_t Steps : {1, 5, 25, 100, 1000}) {
    SafetyChecker::Options Opts;
    Opts.Limits.ProverSteps = Steps;
    SafetyChecker Checker(Opts);
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    ASSERT_TRUE(R.InputsOk);
    // Either the check got far enough to see a violation (Unsafe) or it
    // died first (Unknown) — but a Safe verdict would be unsound.
    EXPECT_NE(R.Verdict, CheckVerdict::Safe) << "steps=" << Steps;
    if (R.Diags.hasViolations())
      EXPECT_EQ(R.Verdict, CheckVerdict::Unsafe) << "steps=" << Steps;
  }
}

TEST(FailSoundness, CancellationYieldsUnknown) {
  const CorpusProgram &P = corpusProgram("Sum");
  support::ResourceGovernor Gov;
  Gov.cancel("test/external");
  SafetyChecker::Options Opts;
  Opts.Governor = &Gov;
  SafetyChecker Checker(Opts);
  CheckReport R = Checker.checkSource(P.Asm, P.Policy);
  EXPECT_EQ(R.Verdict, CheckVerdict::Unknown);
  EXPECT_FALSE(R.Safe);
  ASSERT_FALSE(R.Failures.empty());
  bool SawCancelled = false;
  for (const CheckFailure &F : R.Failures)
    SawCancelled |= F.Kind == FailureKind::Cancelled;
  EXPECT_TRUE(SawCancelled);
}

TEST(FailSoundness, DeadlineOfOneMsNeitherCrashesNorClaimsSafeFalsely) {
  // The chaos-style deadline check: a 1ms deadline over the whole corpus
  // must produce only structured verdicts. SAFE is acceptable only when
  // the check actually completed (no resource failure recorded).
  for (const CorpusProgram &P : corpus::corpus()) {
    SafetyChecker::Options Opts;
    Opts.Limits.DeadlineMs = 1;
    SafetyChecker Checker(Opts);
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    if (R.Verdict == CheckVerdict::Safe) {
      EXPECT_TRUE(P.ExpectSafe) << P.Name;
      for (const CheckFailure &F : R.Failures)
        EXPECT_NE(F.Kind, FailureKind::ResourceExhausted)
            << P.Name << ": " << F.str();
    }
  }
}

TEST(FailSoundness, FailSoftRecordsEveryUndecidedObligation) {
  const CorpusProgram &P = corpusProgram("Sum");
  SafetyChecker::Options Stop;
  Stop.Limits.ProverSteps = 1;
  SafetyChecker StopChecker(Stop);
  CheckReport StopR = StopChecker.checkSource(P.Asm, P.Policy);

  SafetyChecker::Options Soft;
  Soft.Limits.ProverSteps = 1;
  Soft.FailSoft = true;
  SafetyChecker SoftChecker(Soft);
  CheckReport SoftR = SoftChecker.checkSource(P.Asm, P.Policy);

  EXPECT_EQ(StopR.Verdict, CheckVerdict::Unknown);
  EXPECT_EQ(SoftR.Verdict, CheckVerdict::Unknown);
  // Fail-soft enumerates each undecided obligation individually instead
  // of one summary failure, so it records at least as many.
  EXPECT_GE(SoftR.Failures.size(), StopR.Failures.size());
}

TEST(FailSoundness, ExitCodesAreStable) {
  EXPECT_EQ(exitCode(CheckVerdict::Safe), 0);
  EXPECT_EQ(exitCode(CheckVerdict::Unsafe), 1);
  EXPECT_EQ(exitCode(CheckVerdict::MalformedInput), 2);
  EXPECT_EQ(exitCode(CheckVerdict::Unknown), 3);
  EXPECT_EQ(exitCode(CheckVerdict::InternalError), 4);
}

TEST(FailSoundness, PreparationRejectsUndeclaredInvocationLocation) {
  // Regression for an input-reachable assert: an InvocationBinding that
  // names an undeclared location used to hit
  // `assert(Id != InvalidLoc && "validated by the parser")` in
  // buildEntryStore. The parser does validate, but prepare() is a public
  // API — a policy built programmatically (or a future parser bug) must
  // get a diagnostic, not an abort.
  std::string Error;
  std::optional<sparc::Module> M = sparc::assemble("  retl\n  nop\n", &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  for (policy::InvocationBinding::Kind K :
       {policy::InvocationBinding::Kind::ValueOfLoc,
        policy::InvocationBinding::Kind::AddressOfLoc}) {
    policy::Policy Pol;
    policy::InvocationBinding B;
    B.Reg = *sparc::parseReg("%o0");
    B.K = K;
    B.LocName = "no_such_loc";
    Pol.Invocation.push_back(B);
    DiagnosticEngine Diags;
    std::optional<CheckContext> Ctx = prepare(*M, Pol, Diags);
    EXPECT_FALSE(Ctx.has_value());
    EXPECT_TRUE(Diags.hasFatal());
    EXPECT_NE(Diags.str().find("no_such_loc"), std::string::npos)
        << Diags.str();
  }
}

TEST(FailSoundness, MalformedAssemblyIsAStructuredRejection) {
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource("frobnicate %o0, %o1\n",
                                      "loc e : int32 state=init\n");
  EXPECT_FALSE(R.InputsOk);
  EXPECT_EQ(R.Verdict, CheckVerdict::MalformedInput);
  ASSERT_FALSE(R.Failures.empty());
  EXPECT_EQ(R.Failures.front().Phase, CheckPhase::Input);
  EXPECT_EQ(R.Failures.front().Kind, FailureKind::MalformedAssembly);
}

TEST(FailSoundness, MalformedPolicyIsAStructuredRejection) {
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource("  retl\n  nop\n",
                                      "loc e : no_such_type\n");
  EXPECT_FALSE(R.InputsOk);
  EXPECT_EQ(R.Verdict, CheckVerdict::MalformedInput);
  ASSERT_FALSE(R.Failures.empty());
  EXPECT_EQ(R.Failures.front().Kind, FailureKind::MalformedPolicy);
}

} // namespace
