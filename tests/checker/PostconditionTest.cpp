//===- PostconditionTest.cpp - Safety postconditions (Section 2) ----------===//
//
// "In reality, a safety policy can also include a safety postcondition
// (typestates and linear constraints) for ensuring that certain
// invariants defined on the host data are restored by the time control
// is returned to the host."
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "policy/PolicyParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

CheckReport check(const char *Asm, const char *Policy) {
  SafetyChecker Checker;
  return Checker.checkSource(Asm, Policy);
}

TEST(Postcondition, LinearPostconditionVerified) {
  // The host demands the counter location be left >= its original value.
  const char *Policy = R"(
loc ctr : int32 state=init
region H { ctr }
allow H : int32 : r,w,o
invoke %o0 = &ctr
postconstraint val:ctr >= 1
)";
  // Writes 5 into the counter: 5 >= 1 holds on return.
  CheckReport Good = check(R"(
  mov 5,%g1
  st %g1,[%o0]
  retl
  nop
)", Policy);
  ASSERT_TRUE(Good.InputsOk) << Good.Diags.str();
  EXPECT_TRUE(Good.Safe) << Good.Diags.str();

  // Zeroes it: 0 >= 1 is refutable.
  CheckReport Bad = check(R"(
  st %g0,[%o0]
  retl
  nop
)", Policy);
  ASSERT_TRUE(Bad.InputsOk) << Bad.Diags.str();
  EXPECT_FALSE(Bad.Safe);
  EXPECT_GE(Bad.Diags.countOfKind(SafetyKind::Postcondition), 1u);
}

TEST(Postcondition, LinearPostconditionAcrossBranches) {
  const char *Policy = R"(
loc ctr : int32 state=init
region H { ctr }
allow H : int32 : r,w,o
invoke %o0 = &ctr
invoke %o1 = x
postconstraint val:ctr >= 0
)";
  // Stores either 1 or 2 depending on a branch: both satisfy >= 0.
  CheckReport R = check(R"(
  cmp %o1,0
  ble low
  nop
  mov 2,%g1
  st %g1,[%o0]
  retl
  nop
low:
  mov 1,%g1
  st %g1,[%o0]
  retl
  nop
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(Postcondition, StatePostconditionRequiresInitialized) {
  // The scratch cell starts uninitialized and must be initialized on
  // return.
  const char *Policy = R"(
loc cell : int32 state=uninit
region H { cell }
allow H : int32 : r,w,o
invoke %o0 = &cell
postloc cell state=init
)";
  CheckReport Good = check(R"(
  mov 7,%g1
  st %g1,[%o0]
  retl
  nop
)", Policy);
  EXPECT_TRUE(Good.Safe) << Good.Diags.str();

  CheckReport Bad = check(R"(
  retl
  nop
)", Policy);
  EXPECT_FALSE(Bad.Safe);
  EXPECT_GE(Bad.Diags.countOfKind(SafetyKind::Postcondition), 1u);
}

TEST(Postcondition, StatePostconditionOnOnePathOnly) {
  // Initialized on one path only: the meet at exit is uninit -> flagged.
  const char *Policy = R"(
loc cell : int32 state=uninit
region H { cell }
allow H : int32 : r,w,o
invoke %o0 = &cell
invoke %o1 = x
postloc cell state=init
)";
  CheckReport R = check(R"(
  cmp %o1,0
  ble skip
  nop
  mov 1,%g1
  st %g1,[%o0]
skip:
  retl
  nop
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::Postcondition), 1u);
}

TEST(Postcondition, PointerShapeRestored) {
  // The policy permits modifying the link but demands it point back into
  // the list (or be null) on return.
  const char *Policy = R"(
struct node { v: int32 @0; next: node* @4 } size 8 align 4
loc nd : node state={nd,null} summary
loc head : node* state={nd,null}
region H { nd, head }
allow H : int32 : r,o
allow H : node* : r,w,f,o
allow H : node.next : r,w,f,o
invoke %o0 = head
postloc nd state={nd,null}
)";
  // Terminates the list at the head node: next := null. Null is in the
  // allowed shape.
  CheckReport Good = check(R"(
  cmp %o0,0
  be out
  nop
  st %g0,[%o0+4]
out:
  retl
  nop
)", Policy);
  ASSERT_TRUE(Good.InputsOk) << Good.Diags.str();
  EXPECT_TRUE(Good.Safe) << Good.Diags.str();
}

TEST(Postcondition, RegisterPostcondition) {
  // The host requires a nonnegative return value in %o0.
  const char *Policy = R"(
invoke %o0 = x
postconstraint %o0 >= 0
)";
  CheckReport Good = check(R"(
  clr %o0
  retl
  nop
)", Policy);
  EXPECT_TRUE(Good.Safe) << Good.Diags.str();

  CheckReport Bad = check(R"(
  mov -1,%o0
  retl
  nop
)", Policy);
  EXPECT_FALSE(Bad.Safe);
  EXPECT_GE(Bad.Diags.countOfKind(SafetyKind::Postcondition), 1u);
}

TEST(Postcondition, ParserRejectsUnknownPostloc) {
  std::string Error;
  EXPECT_FALSE(
      policy::parsePolicy("postloc ghost state=init\n", &Error)
          .has_value());
  EXPECT_NE(Error.find("undeclared"), std::string::npos);
}

} // namespace
