//===- PropagationTest.cpp - Phase 2 (Figure 6) ---------------------------===//
//
// Validates typestate propagation against the paper's Figure 6: the
// per-instruction abstract stores of the running example, overload
// resolution, branch refinement, and the register-window transformers.
//
//===----------------------------------------------------------------------===//

#include "checker/CheckContext.h"
#include "checker/Propagation.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::typestate;
using namespace mcsafe::sparc;

namespace {

struct Session {
  Module M;
  policy::Policy Pol;
  DiagnosticEngine Diags;
  std::optional<CheckContext> Ctx;
  PropagationResult Prop;

  Session(const char *Asm, const char *PolicyText) {
    std::string Error;
    std::optional<Module> Mod = assemble(Asm, &Error);
    EXPECT_TRUE(Mod.has_value()) << Error;
    M = std::move(*Mod);
    std::optional<policy::Policy> P =
        policy::parsePolicy(PolicyText, &Error);
    EXPECT_TRUE(P.has_value()) << Error;
    Pol = std::move(*P);
    Ctx = prepare(M, Pol, Diags);
    EXPECT_TRUE(Ctx.has_value()) << Diags.str();
    if (Ctx)
      Prop = propagate(*Ctx);
  }

  /// In-store of the first node executing 1-based statement \p Line.
  const AbstractStore &inAt(uint32_t Line) const {
    for (cfg::NodeId Id = 0; Id < Ctx->Graph.size(); ++Id) {
      const cfg::CfgNode &N = Ctx->Graph.node(Id);
      if (N.Kind == cfg::NodeKind::Normal && N.InstIndex == Line - 1)
        return Prop.In[Id];
    }
    static AbstractStore Top = AbstractStore::top();
    ADD_FAILURE() << "no node for line " << Line;
    return Top;
  }

  cfg::NodeId nodeAt(uint32_t Line) const {
    for (cfg::NodeId Id = 0; Id < Ctx->Graph.size(); ++Id) {
      const cfg::CfgNode &N = Ctx->Graph.node(Id);
      if (N.Kind == cfg::NodeKind::Normal && N.InstIndex == Line - 1)
        return Id;
    }
    return cfg::InvalidNode;
  }
};

const char *SumAsm = R"(
  mov %o0,%o2
  clr %o0
  cmp %o0,%o1
  bge 12
  clr %g3
  sll %g3,2,%g2
  ld [%o2+%g2],%g2
  inc %g3
  cmp %g3,%o1
  bl 6
  add %o0,%g2,%o0
  retl
  nop
)";

const char *SumPolicy = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";

TEST(Propagation, Figure6EntryState) {
  Session S(SumAsm, SumPolicy);
  const AbstractStore &Entry = S.inAt(1);
  ASSERT_FALSE(Entry.isTop());
  // %o0: <int32[n], {e}, rwfo>; the register carries f and o.
  Typestate O0Ts = Entry.reg(0, O0);
  EXPECT_EQ(O0Ts.Type->kind(), TypeKind::ArrayBase);
  ASSERT_TRUE(O0Ts.S.isPointsTo());
  EXPECT_EQ(O0Ts.S.targets().size(), 1u);
  EXPECT_FALSE(O0Ts.S.mayBeNull());
  EXPECT_TRUE(O0Ts.A.F);
  EXPECT_TRUE(O0Ts.A.O);
  // %o1: <int32, initialized, rwo>.
  Typestate O1Ts = Entry.reg(0, O1);
  EXPECT_TRUE(O1Ts.Type->isGround());
  EXPECT_TRUE(O1Ts.S.isInit());
  EXPECT_TRUE(O1Ts.A.O);
}

TEST(Propagation, Figure6MovCopiesThePointer) {
  Session S(SumAsm, SumPolicy);
  // After line 1 (mov %o0,%o2), i.e. before line 2: %o2 points to e.
  const AbstractStore &AtLine2 = S.inAt(2);
  Typestate O2Ts = AtLine2.reg(0, O2);
  EXPECT_EQ(O2Ts.Type->kind(), TypeKind::ArrayBase);
  ASSERT_TRUE(O2Ts.S.isPointsTo());
  AbsLocId E = S.Ctx->Locs.lookup("e");
  EXPECT_EQ(O2Ts.S.targets().begin()->Loc, E);
}

TEST(Propagation, Figure6ClrMakesZero) {
  Session S(SumAsm, SumPolicy);
  // Before line 3: %o0 == 0 after clr.
  EXPECT_EQ(S.inAt(3).reg(0, O0).S.constant(), 0);
}

TEST(Propagation, Figure6LoopBodyResolvesArrayAccess) {
  Session S(SumAsm, SumPolicy);
  // At line 7 the ld resolves as an array access with %o2 the base and
  // %g2 the index.
  cfg::NodeId Ld = S.nodeAt(7);
  ASSERT_NE(Ld, cfg::InvalidNode);
  InstFacts Facts = resolveInst(*S.Ctx, Ld, S.Prop.In[Ld]);
  EXPECT_FALSE(Facts.Mem.Unresolved);
  EXPECT_TRUE(Facts.Mem.ArrayAccess);
  EXPECT_FALSE(Facts.Mem.Interior);
  EXPECT_EQ(Facts.Mem.BaseReg, O2);
  EXPECT_EQ(Facts.Mem.IndexReg, Reg(2));
  EXPECT_EQ(Facts.Mem.ElemSize, 4u);
  EXPECT_TRUE(Facts.Mem.Bound.Symbolic);
  ASSERT_EQ(Facts.Mem.Leaves.size(), 1u);
  EXPECT_EQ(Facts.Mem.Leaves[0], S.Ctx->Locs.lookup("e"));
  EXPECT_FALSE(Facts.Mem.Strong); // Summary location: weak only.
}

TEST(Propagation, Figure6IndexIsInitializedInteger) {
  Session S(SumAsm, SumPolicy);
  // Before line 7, %g2 = 4*%g3 is an initialized nonnegative integer
  // (interval from sll over %g3 in [0, inf)).
  Typestate G2 = S.inAt(7).reg(0, Reg(2));
  EXPECT_TRUE(G2.Type->isGround());
  EXPECT_TRUE(G2.S.isInit());
  ASSERT_TRUE(G2.S.lower().has_value());
  EXPECT_GE(*G2.S.lower(), 0);
}

TEST(Propagation, AddOverloadResolution) {
  Session S(SumAsm, SumPolicy);
  // Line 11: add %o0,%g2,%o0 is a scalar addition (both ints).
  cfg::NodeId Add = S.nodeAt(11);
  InstFacts Facts = resolveInst(*S.Ctx, Add, S.Prop.In[Add]);
  EXPECT_EQ(Facts.Add, AddUsage::Scalar);
}

TEST(Propagation, ArrayIndexAddProducesInteriorPointer) {
  const char *Asm = R"(
  sll %o1,2,%g1
  add %o0,%g1,%o2   ! base + byte index: array-index calculation
  ld [%o2],%o0
  retl
  nop
)";
  Session S(Asm, SumPolicy);
  cfg::NodeId Add = S.nodeAt(2);
  InstFacts Facts = resolveInst(*S.Ctx, Add, S.Prop.In[Add]);
  EXPECT_EQ(Facts.Add, AddUsage::ArrayIndex);
  // The result is t(n] pointing at the same summary.
  Typestate O2Ts = S.inAt(3).reg(0, O2);
  EXPECT_EQ(O2Ts.Type->kind(), TypeKind::ArrayInterior);
  ASSERT_TRUE(O2Ts.S.isPointsTo());
  // And the interior load resolves without a bounds obligation.
  cfg::NodeId Ld = S.nodeAt(3);
  InstFacts LdFacts = resolveInst(*S.Ctx, Ld, S.Prop.In[Ld]);
  EXPECT_FALSE(LdFacts.Mem.Unresolved);
  EXPECT_TRUE(LdFacts.Mem.Interior);
}

const char *ThreadPolicy = R"(
struct thread { tid: int32 @0; lwpid: int32 @4; next: thread* @8 } size 12 align 4
loc th : thread state={th,null} summary
loc threads : thread* state={th,null}
region H { th, threads }
allow H : int32 : r,o
allow H : thread* : r,f,o
invoke %o0 = threads
)";

TEST(Propagation, BranchRefinementDropsNull) {
  const char *Asm = R"(
  cmp %o0,0
  be 7
  nop
  ld [%o0+0],%o1   ! %o0 is non-null here
  retl
  nop
  clr %o1          ! null-only path
  retl
  nop
)";
  Session S(Asm, ThreadPolicy);
  Typestate AtLd = S.inAt(4).reg(0, O0);
  ASSERT_TRUE(AtLd.S.isPointsTo());
  EXPECT_FALSE(AtLd.S.mayBeNull());
  // On the taken side (line 7) the pointer is definitely null.
  Typestate AtNull = S.inAt(7).reg(0, O0);
  ASSERT_TRUE(AtNull.S.isPointsTo());
  EXPECT_TRUE(AtNull.S.isDefinitelyNull());
}

TEST(Propagation, IntervalRefinementFromSignedBranches) {
  const char *Asm = R"(
  cmp %o1,10
  bge 6
  nop
  inc %o1          ! here %o1 <= 9
  nop
  retl
  nop
)";
  // SumPolicy binds %o1 = n (an initialized scalar), so the branch can
  // refine it.
  Session S(Asm, SumPolicy);
  Typestate AtInc = S.inAt(4).reg(0, O1);
  EXPECT_TRUE(AtInc.S.isInit());
  EXPECT_EQ(AtInc.S.upper(), 9);
  EXPECT_FALSE(AtInc.S.lower().has_value());
}

TEST(Propagation, StructFieldLoadGetsDeclaredState) {
  const char *Asm = R"(
  cmp %o0,0
  be 6
  nop
  ld [%o0+8],%o0   ! load t->next: {th, null}
  nop
  retl
  nop
)";
  Session S(Asm, ThreadPolicy);
  Typestate AfterLoad = S.inAt(5).reg(0, O0);
  ASSERT_TRUE(AfterLoad.S.isPointsTo());
  EXPECT_TRUE(AfterLoad.S.mayBeNull());
  EXPECT_TRUE(AfterLoad.A.F); // next is followable by the policy.
}

TEST(Propagation, SaveShiftsWindows) {
  const char *Asm = R"(
  save %sp,-96,%sp
  mov %i0,%o0      ! callee sees the caller's %o0 as %i0
  ret
  restore
)";
  Session S(Asm, ThreadPolicy);
  // Before line 2 (inside the window): %i0@1 = old %o0@0 (the pointer).
  const AbstractStore &In = S.inAt(2);
  Typestate I0Ts = In.reg(1, Reg(24));
  ASSERT_TRUE(I0Ts.S.isPointsTo());
  // Locals are uninitialized.
  EXPECT_TRUE(In.reg(1, L0).S.isUninit());
}

TEST(Propagation, RestoreReturnsValues) {
  const char *Asm = R"(
  call helper
  nop
  mov %o0,%o1      ! caller sees the callee's %i0 as %o0
  retl
  nop
helper:
  save %sp,-96,%sp
  mov 42,%i0       ! return value
  ret
  restore
)";
  Session S(Asm, ThreadPolicy);
  EXPECT_EQ(S.inAt(3).reg(0, O0).S.constant(), 42);
}

TEST(Propagation, TrustedCallClobbersAndReturns) {
  const char *Policy = R"(
trusted gettime {
  returns int32 state=init access=o
}
)";
  const char *Asm = R"(
  mov 7,%o3
  call gettime
  nop
  add %o0,%o3,%o4  ! %o0 is the fresh return value; %o3 survived? no --
  retl             ! %o3 is caller-saved and clobbered
  nop
)";
  Session S(Asm, Policy);
  const AbstractStore &AfterCall = S.inAt(4);
  EXPECT_TRUE(AfterCall.reg(0, O0).S.isInit());
  EXPECT_TRUE(AfterCall.reg(0, O3).S.isUninit());
}

TEST(Propagation, OversizedShiftCountFoldsLikeTheMachine) {
  // Regression: the constant fold must mask the count through
  // sparc::shiftCount exactly as the interpreter does — sll by 33 is
  // sll by 1, not an unfoldable shift (and certainly not a shift that
  // zeroes the register).
  const char *Asm = R"(
  mov 6,%o0
  sll %o0,33,%o1
  srl %o0,33,%o2
  retl
  nop
)";
  Session S(Asm, SumPolicy);
  EXPECT_EQ(S.inAt(4).reg(0, O1).S.constant(), 12);
  EXPECT_EQ(S.inAt(4).reg(0, O2).S.constant(), 3);
}

TEST(Propagation, SllPastInt32KeepsThePointReachable) {
  // Regression: sll scales interval bounds mathematically, so a value
  // in [2^29, 2^29+3] shifted by 2 carries bounds past INT32_MAX while
  // the machine register wraps negative (concrete %o1=0 yields
  // 0x80000000) and the shifted pattern's sign bit is known one.
  // Claiming the result as the exact signed-int32 reading of its
  // pattern used to let crossRefine clamp the two facts into an empty
  // interval — an unreachability witness for a perfectly reachable
  // point, silencing every downstream safety check.
  const char *Asm = R"(
  cmp %o1,0
  bl 12
  nop
  cmp %o1,3
  bg 12
  nop
  sethi 0x80000,%o2
  add %o1,%o2,%o3
  sll %o3,2,%o4
  mov %o4,%o5
  nop
  retl
  nop
)";
  Session S(Asm, SumPolicy);
  // Before line 10, %o1 in [0, 3], %o3 in [2^29, 2^29+3], and %o4
  // carries the scaled bounds — a nonempty interval, not a
  // contradiction.
  const AbstractStore &AtMov = S.inAt(10);
  ASSERT_FALSE(AtMov.isTop());
  Typestate O4Ts = AtMov.reg(0, O4);
  ASSERT_TRUE(O4Ts.S.isInit());
  ASSERT_TRUE(O4Ts.S.lower().has_value());
  ASSERT_TRUE(O4Ts.S.upper().has_value());
  EXPECT_LE(*O4Ts.S.lower(), *O4Ts.S.upper());
  EXPECT_EQ(*O4Ts.S.lower(), int64_t(1) << 31);
  EXPECT_EQ(*O4Ts.S.upper(), (int64_t(1) << 31) + 12);
  // The escaped bounds forfeit the exact-pattern claim.
  EXPECT_FALSE(O4Ts.S.pattern32());
}

TEST(Propagation, OversizedSrlCountIsNotClaimedExact) {
  // Regression: srl with an effective count of 0 (32 masks to 0)
  // returns the operand unchanged, so the result may only claim to be
  // the signed-int32 reading of its pattern if the operand could; a
  // known nonzero count clears the sign bit and the claim is sound.
  const char *Asm = R"(
  srl %o1,32,%o2
  srl %o1,1,%o3
  retl
  nop
)";
  Session S(Asm, SumPolicy);
  EXPECT_FALSE(S.inAt(2).reg(0, O2).S.pattern32());
  EXPECT_TRUE(S.inAt(3).reg(0, O3).S.pattern32());
}

} // namespace
