//===- RunningExampleTest.cpp ---------------------------------------------===//
//
// End-to-end check of the paper's Figure 1 running example: summing the
// elements of an integer array, with the host typestate, access policy,
// and invocation specification of Figures 1-2.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

const char *SumAsm = R"(
  mov %o0,%o2
  clr %o0
  cmp %o0,%o1
  bge 12
  clr %g3
  sll %g3,2,%g2
  ld [%o2+%g2],%g2
  inc %g3
  cmp %g3,%o1
  bl 6
  add %o0,%g2,%o0
  retl
  nop
)";

const char *SumPolicy = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";

TEST(RunningExample, SumVerifies) {
  SafetyChecker Checker;
  CheckReport Report = Checker.checkSource(SumAsm, SumPolicy);
  ASSERT_TRUE(Report.InputsOk) << Report.Diags.str();
  EXPECT_TRUE(Report.Safe) << Report.Diags.str();
  EXPECT_EQ(Report.LocalViolations, 0u);
  EXPECT_EQ(Report.Global.ObligationsFailed, 0u);
}

TEST(RunningExample, CharacteristicsMatchFigure9) {
  SafetyChecker Checker;
  CheckReport Report = Checker.checkSource(SumAsm, SumPolicy);
  ASSERT_TRUE(Report.InputsOk) << Report.Diags.str();
  // Figure 9, "Sum" column: 13 instructions, 2 branches, 1 loop (no
  // inner loops), 0 procedure calls, 4 global safety conditions.
  EXPECT_EQ(Report.Chars.Instructions, 13u);
  EXPECT_EQ(Report.Chars.Branches, 2u);
  EXPECT_EQ(Report.Chars.Loops, 1u);
  EXPECT_EQ(Report.Chars.InnerLoops, 0u);
  EXPECT_EQ(Report.Chars.Calls, 0u);
  EXPECT_EQ(Report.Chars.GlobalConditions, 4u);
}

TEST(RunningExample, SynthesizesLoopInvariant) {
  SafetyChecker Checker;
  CheckReport Report = Checker.checkSource(SumAsm, SumPolicy);
  ASSERT_TRUE(Report.InputsOk) << Report.Diags.str();
  // The bounds checks need the induction-iteration method.
  EXPECT_GE(Report.Global.InvariantsSynthesized +
                Report.Global.InvariantReuses,
            1u);
}

TEST(RunningExample, ViolationWhenSizeUnderstated) {
  // Without n >= 1 the loop still runs at least once (the code checks
  // %o1 <= 0 before entering, so this stays safe)... but with the bge
  // guard removed the first iteration reads arr[0] unconditionally; with
  // no constraint tying %o1 to n, the bound check must fail.
  const char *BadPolicy = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = m
constraint n >= 1
constraint m >= 1
)";
  SafetyChecker Checker;
  CheckReport Report = Checker.checkSource(SumAsm, BadPolicy);
  ASSERT_TRUE(Report.InputsOk) << Report.Diags.str();
  // The upper bound cannot be established: %o1 (= m) is unrelated to n.
  EXPECT_FALSE(Report.Safe);
  EXPECT_GE(Report.Diags.countOfKind(SafetyKind::ArrayBounds), 1u);
}

TEST(RunningExample, WriteToReadOnlyArrayRejected) {
  // Same loop but storing to the array: e has no w permission.
  const char *StoreAsm = R"(
  mov %o0,%o2
  clr %g3
  cmp %g3,%o1
  bge 10
  nop
  sll %g3,2,%g2
  st %g0,[%o2+%g2]
  inc %g3
  ba 3
  nop
  retl
  nop
)";
  SafetyChecker Checker;
  CheckReport Report = Checker.checkSource(StoreAsm, SumPolicy);
  ASSERT_TRUE(Report.InputsOk) << Report.Diags.str();
  EXPECT_FALSE(Report.Safe);
  EXPECT_GE(Report.Diags.countOfKind(SafetyKind::AccessPolicy), 1u);
}

TEST(RunningExample, UninitializedUseDetected) {
  // %g1 is never initialized before use.
  const char *UninitAsm = R"(
  add %g1,1,%o0
  retl
  nop
)";
  SafetyChecker Checker;
  CheckReport Report = Checker.checkSource(UninitAsm, SumPolicy);
  ASSERT_TRUE(Report.InputsOk) << Report.Diags.str();
  EXPECT_FALSE(Report.Safe);
  EXPECT_GE(Report.Diags.countOfKind(SafetyKind::UninitializedUse), 1u);
}

} // namespace
