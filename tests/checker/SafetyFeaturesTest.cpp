//===- SafetyFeaturesTest.cpp - End-to-end coverage of safety conditions --===//
//
// Exercises the default safety conditions of Section 2 one by one —
// array bounds, alignment, uninitialized uses, null dereferences, stack
// discipline — plus frame annotations, trusted-call checking, and the
// machine-word (decoded binary) front end.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"
#include "sparc/Encoding.h"

#include <gtest/gtest.h>

#include <string>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

const char *ArrayRwPolicy = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,w,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";

CheckReport check(const char *Asm, const char *Policy = ArrayRwPolicy) {
  SafetyChecker Checker;
  return Checker.checkSource(Asm, Policy);
}

TEST(SafetyFeatures, OffByOneUpperBoundCaught) {
  // Loops to i <= n instead of i < n.
  CheckReport R = check(R"(
  clr %g3
loop:
  cmp %g3,%o1
  bg done          ! i > n exits: one iteration too many
  nop
  sll %g3,2,%g2
  ld [%o0+%g2],%g1
  inc %g3
  ba loop
  nop
done:
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::ArrayBounds), 1u);
}

TEST(SafetyFeatures, NegativeIndexCaught) {
  CheckReport R = check(R"(
  mov -4,%g2
  ld [%o0+%g2],%g1
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::ArrayBounds), 1u);
}

TEST(SafetyFeatures, MisalignedIndexCaught) {
  // Index 2 is within bounds for n >= 1 but not 4-aligned.
  CheckReport R = check(R"(
  mov 2,%g2
  ld [%o0+%g2],%g1
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::Alignment), 1u);
}

TEST(SafetyFeatures, BranchOnUninitializedConditionCodes) {
  CheckReport R = check(R"(
  bl 4
  nop
  clr %o0
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::UninitializedUse), 1u);
}

TEST(SafetyFeatures, StoringUninitializedValueCaught) {
  CheckReport R = check(R"(
  st %l5,[%o0]
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::UninitializedUse), 1u);
}

TEST(SafetyFeatures, WidthMismatchedAccessRejected) {
  // A byte load from an int32 array element does not resolve.
  CheckReport R = check(R"(
  ldub [%o0],%g1
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::TypeError), 1u);
}

TEST(SafetyFeatures, ForgedPointerRejected) {
  // Building an address from an integer constant and dereferencing it.
  CheckReport R = check(R"(
  set 0x40000,%g1
  ld [%g1],%o0
  retl
  nop
)");
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  // The base is not a valid pointer: not followable.
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::UninitializedUse) +
                R.Diags.countOfKind(SafetyKind::TypeError),
            1u);
}

TEST(SafetyFeatures, DivisionByZeroObligation) {
  const char *Policy = R"(
invoke %o0 = a
invoke %o1 = b
constraint b >= 1
)";
  CheckReport R = check(R"(
  sdiv %o0,%o1,%o2
  retl
  nop
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str(); // b >= 1 proves b != 0.

  const char *NoConstraint = R"(
invoke %o0 = a
invoke %o1 = b
)";
  CheckReport R2 = check(R"(
  sdiv %o0,%o1,%o2
  retl
  nop
)", NoConstraint);
  EXPECT_FALSE(R2.Safe); // b could be zero.
}

TEST(SafetyFeatures, AnnotatedFrameVerifies) {
  // A function with a local array, annotated per the paper's requirement
  // ("we have to annotate the stackframes for the functions that use
  // local arrays").
  const char *Policy = R"(
struct fr { buf: int32 @0 x 8; n: int32 @32 } size 96 align 8
frame 1 : fr
)";
  CheckReport R = check(R"(
  save %sp,-96,%sp
  add %sp,0,%l1    ! buf base
  clr %l0
loop:
  cmp %l0,8
  bge done
  nop
  sll %l0,2,%g2
  st %l0,[%l1+%g2]
  inc %l0
  ba loop
  nop
done:
  st %l0,[%sp+32]
  ret
  restore
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(SafetyFeatures, FrameOverflowCaught) {
  const char *Policy = R"(
struct fr { buf: int32 @0 x 8; n: int32 @32 } size 96 align 8
frame 1 : fr
)";
  CheckReport R = check(R"(
  save %sp,-96,%sp
  add %sp,0,%l1
  clr %l0
loop:
  cmp %l0,9        ! one past the embedded array
  bge done
  nop
  sll %l0,2,%g2
  st %l0,[%l1+%g2]
  inc %l0
  ba loop
  nop
done:
  ret
  restore
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::ArrayBounds), 1u);
}

TEST(SafetyFeatures, UnannotatedFrameAccessRejected) {
  // Without a frame annotation, stack accesses do not resolve.
  const char *Policy = "constraint 1 >= 0\n";
  CheckReport R = check(R"(
  save %sp,-96,%sp
  st %g0,[%sp+0]
  ret
  restore
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
}

TEST(SafetyFeatures, FpRelativeFrameAccess) {
  // %fp = old %sp points one-past-the-end of the callee frame; the
  // annotation covers [%fp-96, %fp).
  const char *Policy = R"(
struct fr { pad: int32 @0 x 22; x: int32 @88; y: int32 @92 } size 96 align 8
frame 1 : fr
invoke %sp = sp0
)";
  CheckReport R = check(R"(
  save %sp,-96,%sp
  st %g0,[%fp-8]   ! fr.x at offset 96-8 = 88
  st %g0,[%fp-4]   ! fr.y at 92
  ret
  restore
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(SafetyFeatures, CheckingDecodedMachineWords) {
  // The checker consumes decoded binaries identically to assembled text:
  // encode the array-sum module, decode it, and check the result.
  std::string Error;
  std::optional<sparc::Module> M = sparc::assemble(R"(
  mov %o0,%o2
  clr %o0
  cmp %o0,%o1
  bge 12
  clr %g3
  sll %g3,2,%g2
  ld [%o2+%g2],%g2
  inc %g3
  cmp %g3,%o1
  bl 6
  add %o0,%g2,%o0
  retl
  nop
)", &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  std::optional<std::vector<uint32_t>> Words = sparc::encodeModule(*M);
  ASSERT_TRUE(Words.has_value());
  std::optional<sparc::Module> Decoded = sparc::decodeModule(*Words);
  ASSERT_TRUE(Decoded.has_value());
  std::optional<policy::Policy> Pol = policy::parsePolicy(ArrayRwPolicy);
  ASSERT_TRUE(Pol.has_value());
  SafetyChecker Checker;
  CheckReport R = Checker.check(*Decoded, *Pol);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(SafetyFeatures, ByteArrayAccessUsesByteAlignment) {
  const char *Policy = R"(
loc be : uint8 state=init summary
loc buf : uint8[n] state={be}
region V { buf, be }
allow V : uint8 : r,o
allow V : uint8[n] : r,f,o
invoke %o0 = buf
invoke %o1 = n
constraint n >= 1
)";
  // Byte loads need no alignment; any index below n works.
  CheckReport R = check(R"(
  clr %g3
loop:
  cmp %g3,%o1
  bge done
  nop
  ldub [%o0+%g3],%g1
  inc %g3
  ba loop
  nop
done:
  retl
  nop
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(SafetyFeatures, IntervalBoundsAvoidSynthesis) {
  // With a literal bound established by a clamp, the interval analysis
  // discharges the checks without induction-iteration.
  const char *Policy = R"(
loc e : int32 state=init summary
loc arr : int32[16] state={e}
region V { arr, e }
allow V : int32 : r,w,o
allow V : int32[16] : r,f,o
invoke %o0 = arr
invoke %o1 = k
)";
  CheckReport R = check(R"(
  tst %o1
  ble out
  nop
  cmp %o1,16
  ble ok
  nop
  mov 16,%o1
ok:
  clr %g3
loop:
  cmp %g3,%o1
  bge out
  nop
  sll %g3,2,%g2
  st %g3,[%o0+%g2]
  inc %g3
  ba loop
  nop
out:
  retl
  nop
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(SafetyFeatures, ReportCountsPhases) {
  support::MetricsRegistry Reg;
  SafetyChecker::Options Opts;
  Opts.Metrics = &Reg;
  Opts.MetricScope = "program/T";
  SafetyChecker Checker(Opts);
  CheckReport R = Checker.checkSource(R"(
  clr %g3
  cmp %g3,%o1
  bge 7
  nop
  sll %g3,2,%g2
  ld [%o0+%g2],%g1
  retl
  nop
)", ArrayRwPolicy);
  ASSERT_TRUE(R.InputsOk);
  EXPECT_GT(R.LocalChecks, 0u);
  EXPECT_GT(R.ProverStats.SatQueries, 0u);
  EXPECT_EQ(R.Chars.Instructions, 8u);
  // Wall-clock data goes to the registry, not the report: every phase
  // that ran published a microsecond counter under the check's scope.
  for (const char *Phase :
       {"prepare", "lint", "typestate", "annotation", "global", "total"})
    EXPECT_TRUE(Reg.value(std::string("program/T/phase/") + Phase + "_us")
                    .has_value())
        << Phase;
  EXPECT_GT(*Reg.value("program/T/prover/sat_queries"), 0);
}

//===----------------------------------------------------------------------===//
// The known-bits / alignment domain.
//===----------------------------------------------------------------------===//

TEST(SafetyFeatures, SfiCorpusNeedsKnownBitsDomain) {
  // The SFI mask idioms are the differential the domain exists for:
  // SAFE with it (the default), not provable without. SfiShift's bound
  // survives through the interval domain, so it stays SAFE either way.
  SafetyChecker::Options Off;
  Off.KnownBits = false;
  for (const char *Name :
       {"SfiMask", "SfiMaskLoop", "SfiAndn", "SfiSethi", "SfiHalfword"}) {
    const corpus::CorpusProgram &P = corpus::corpusProgram(Name);
    EXPECT_TRUE(SafetyChecker().checkSource(P.Asm, P.Policy).Safe) << Name;
    EXPECT_FALSE(SafetyChecker(Off).checkSource(P.Asm, P.Policy).Safe)
        << Name;
  }
  const corpus::CorpusProgram &Shift = corpus::corpusProgram("SfiShift");
  EXPECT_TRUE(SafetyChecker().checkSource(Shift.Asm, Shift.Policy).Safe);
  EXPECT_TRUE(SafetyChecker(Off).checkSource(Shift.Asm, Shift.Policy).Safe);
}

TEST(SafetyFeatures, MisalignedGuardRejectedByLintAndProver) {
  // The broken guard is caught twice over: the phase-0 lint proves the
  // misalignment on every path, and with the lint disabled the phase-5
  // prover refutes the alignment obligation.
  const corpus::CorpusProgram &P = corpus::corpusProgram("SfiUnaligned");
  CheckReport R = SafetyChecker().checkSource(P.Asm, P.Policy);
  EXPECT_FALSE(R.Safe);
  EXPECT_TRUE(R.LintRejected);
  EXPECT_EQ(R.Chars.MisalignedAccesses, 1u);

  SafetyChecker::Options NoLint;
  NoLint.Lint = NoLint.LintReject = NoLint.PruneDeadRegs = false;
  CheckReport R2 = SafetyChecker(NoLint).checkSource(P.Asm, P.Policy);
  EXPECT_FALSE(R2.Safe);
  EXPECT_FALSE(R2.LintRejected);
}

TEST(SafetyFeatures, CongruenceTierCountersPublished) {
  // Alignment obligations from an and-masked access are divisibility
  // atoms, which the congruence pre-solver tier answers; its counters
  // surface through the metrics registry (and the driver's
  // --phase-table / --metrics-json).
  support::MetricsRegistry Reg;
  SafetyChecker::Options Opts;
  Opts.Metrics = &Reg;
  Opts.MetricScope = "program/S";
  const corpus::CorpusProgram &P = corpus::corpusProgram("SfiMask");
  CheckReport R = SafetyChecker(Opts).checkSource(P.Asm, P.Policy);
  ASSERT_TRUE(R.Safe);
  auto Hits = Reg.value("program/S/prover/tier/congruence/hits");
  auto Misses = Reg.value("program/S/prover/tier/congruence/misses");
  ASSERT_TRUE(Hits.has_value());
  ASSERT_TRUE(Misses.has_value());
  EXPECT_GT(*Hits, 0);
}

} // namespace
