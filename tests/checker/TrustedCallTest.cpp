//===- TrustedCallTest.cpp - Trusted-function summaries -------------------===//
//
// The control aspect of the host-typestate specification: "safety pre-
// and post-conditions for calling host functions and methods (in terms
// of the types and states of the parameters and return values, and
// linear constraints on them)".
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

CheckReport check(const char *Asm, const char *Policy) {
  SafetyChecker Checker;
  return Checker.checkSource(Asm, Policy);
}

const char *LogPolicy = R"(
loc buf : int32 state=init summary
loc data : int32[n] state={buf}
region H { data, buf }
allow H : int32 : r,o
allow H : int32[n] : r,f,o
invoke %o0 = data
invoke %o1 = n
constraint n >= 1
trusted log_value {
  param %o0 : int32
  pre %o0 >= 0
  returns int32 state=init access=o
}
)";

TEST(TrustedCall, PreconditionProvedFromContext) {
  // A constant argument trivially satisfies the precondition.
  CheckReport R = check(R"(
  mov 5,%o0
  call log_value
  nop
  retl
  nop
)", LogPolicy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(TrustedCall, PreconditionViolatedByNegativeArgument) {
  CheckReport R = check(R"(
  mov -5,%o0
  call log_value
  nop
  retl
  nop
)", LogPolicy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::TrustedCall), 1u);
}

TEST(TrustedCall, PreconditionProvedThroughBranch) {
  // The argument is only passed when the guard held.
  const char *Policy = R"(
invoke %o0 = x
trusted log_value {
  param %o0 : int32
  pre %o0 >= 0
}
)";
  CheckReport R = check(R"(
  tst %o0
  bneg skip
  nop
  call log_value
  nop
skip:
  retl
  nop
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(TrustedCall, MissingSummaryRejected) {
  CheckReport R = check(R"(
  call not_in_policy
  nop
  retl
  nop
)", LogPolicy);
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::TrustedCall), 1u);
}

TEST(TrustedCall, UninitializedArgumentRejected) {
  CheckReport R = check(R"(
  mov %l3,%o0    ! %l3 was never written
  call log_value
  nop
  retl
  nop
)", LogPolicy);
  EXPECT_FALSE(R.Safe);
  // The mov itself flags the uninitialized read; the call flags the
  // parameter.
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::TrustedCall) +
                R.Diags.countOfKind(SafetyKind::UninitializedUse),
            1u);
}

TEST(TrustedCall, ReturnValueIsUsable) {
  CheckReport R = check(R"(
  mov 1,%o0
  call log_value
  nop
  add %o0,1,%o2  ! the summary's return value is initialized
  retl
  nop
)", LogPolicy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

TEST(TrustedCall, ClobberedRegisterUnusableAfterCall) {
  CheckReport R = check(R"(
  mov 7,%o3
  mov 1,%o0
  call log_value
  nop
  add %o3,1,%o4  ! %o3 is caller-saved: clobbered by the call
  retl
  nop
)", LogPolicy);
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Diags.countOfKind(SafetyKind::UninitializedUse), 1u);
}

TEST(TrustedCall, PointerParameterTargetsChecked) {
  const char *Policy = R"(
abstract gadget size 16 align 4
loc g1 : gadget
loc g2 : gadget
region H { g1, g2 }
invoke %o0 = &g1
invoke %o1 = &g2
trusted poke_g1 {
  param %o0 : gadget* state={g1} access=o
}
)";
  // Passing g1 is fine.
  CheckReport Ok = check(R"(
  call poke_g1
  nop
  retl
  nop
)", Policy);
  EXPECT_TRUE(Ok.Safe) << Ok.Diags.str();

  // Passing g2 points outside the allowed set.
  CheckReport Bad = check(R"(
  mov %o1,%o0
  call poke_g1
  nop
  retl
  nop
)", Policy);
  EXPECT_FALSE(Bad.Safe);
  EXPECT_GE(Bad.Diags.countOfKind(SafetyKind::TrustedCall), 1u);
}

TEST(TrustedCall, WritesClauseReinitializesLocation) {
  // The summary declares it writes 'cell'; afterwards the location reads
  // as initialized even though it started uninitialized.
  const char *Policy = R"(
loc cell : int32 state=uninit
region H { cell }
allow H : int32 : r,w,o
invoke %o0 = &cell
trusted fill_cell {
  param %o0 : int32* state={cell} access=o
  writes cell
}
)";
  CheckReport R = check(R"(
  call fill_cell
  nop
  ld [%o0],%g1   ! hmm -- %o0 clobbered by the call...
  retl
  nop
)", Policy);
  // %o0 is caller-saved, so the reload must fail; this documents the
  // interaction rather than the happy path.
  EXPECT_FALSE(R.Safe);

  // Keeping the pointer in a preserved register works.
  CheckReport R2 = check(R"(
  mov %o0,%g6
  call fill_cell
  nop
  ld [%g6],%g1
  add %g1,1,%g2  ! the loaded value is initialized thanks to 'writes'
  retl
  nop
)", Policy);
  ASSERT_TRUE(R2.InputsOk) << R2.Diags.str();
  EXPECT_TRUE(R2.Safe) << R2.Diags.str();
}

TEST(TrustedCall, PreconditionInstantiatedInsideWindow) {
  // The precondition is written over %o registers; inside a register
  // window it must be checked against the callee-depth values.
  const char *Policy = R"(
invoke %o0 = x
constraint x >= 5
trusted log_value {
  param %o0 : int32
  pre %o0 >= 0
}
)";
  CheckReport R = check(R"(
  save %sp,-96,%sp
  mov %i0,%o0     ! x, known >= 5
  call log_value
  nop
  ret
  restore
)", Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

} // namespace
