//===- VerifierOptionsTest.cpp - Pin the strategy-toggle behaviour --------===//
//
// Unit-level versions of the ablation bench: the enhancements of Section
// 5.2.1 are not decorative — turning them off makes real programs
// unprovable — and the MAX_NUMBER_OF_ITERATIONS discussion of Section
// 5.2.3 holds.
//
//===----------------------------------------------------------------------===//

#include "checker/Report.h"
#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

CheckReport checkSum(const SafetyChecker::Options &Opts) {
  const CorpusProgram &P = corpusProgram("Sum");
  SafetyChecker Checker(Opts);
  return Checker.checkSource(P.Asm, P.Policy);
}

TEST(VerifierOptions, DefaultsProveSum) {
  EXPECT_TRUE(checkSum({}).Safe);
}

TEST(VerifierOptions, GeneralizationIsLoadBearing) {
  // Section 5.2.2: without generalization, W(0) => W(1) never closes for
  // the array-sum bound.
  SafetyChecker::Options Opts;
  Opts.Global.UseGeneralization = false;
  CheckReport R = checkSum(Opts);
  EXPECT_FALSE(R.Safe);
  EXPECT_GE(R.Global.ObligationsFailed, 1u);
}

TEST(VerifierOptions, OneIterationIsNotEnough) {
  SafetyChecker::Options Opts;
  Opts.Global.MaxIterations = 1;
  EXPECT_FALSE(checkSum(Opts).Safe);
}

TEST(VerifierOptions, TwoIterationsSuffice) {
  // The paper bounds at 3; with the generalization candidate accepted at
  // round 1, two suffice for this corpus.
  SafetyChecker::Options Opts;
  Opts.Global.MaxIterations = 2;
  EXPECT_TRUE(checkSum(Opts).Safe);
}

TEST(VerifierOptions, ExtraIterationsDoNotChangeTheVerdict) {
  SafetyChecker::Options Opts;
  Opts.Global.MaxIterations = 6;
  CheckReport R = checkSum(Opts);
  EXPECT_TRUE(R.Safe);
}

TEST(VerifierOptions, ReuseCutsIterations) {
  const CorpusProgram &P = corpusProgram("BubbleSort");
  SafetyChecker::Options NoReuse;
  NoReuse.Global.ReuseInvariants = false;
  SafetyChecker C1, C2(NoReuse);
  CheckReport With = C1.checkSource(P.Asm, P.Policy);
  CheckReport Without = C2.checkSource(P.Asm, P.Policy);
  ASSERT_TRUE(With.Safe) << With.Diags.str();
  EXPECT_GT(With.Global.InvariantReuses, 0u);
  EXPECT_GE(Without.Global.IterationsRun, With.Global.IterationsRun);
}

TEST(VerifierOptions, CacheCountsHits) {
  const CorpusProgram &P = corpusProgram("BubbleSort");
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(P.Asm, P.Policy);
  ASSERT_TRUE(R.Safe);
  EXPECT_GT(R.ProverStats.CacheHits, 0u);
}

TEST(VerifierOptions, QuickDischargesHappen) {
  // Null and alignment checks go through the typestate assertions.
  const CorpusProgram &P = corpusProgram("Btree");
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(P.Asm, P.Policy);
  ASSERT_TRUE(R.Safe) << R.Diags.str();
  EXPECT_GT(R.Global.QuickDischarges, 0u);
}

TEST(Report, TypestateListingShowsFigure6Facts) {
  const CorpusProgram &P = corpusProgram("Sum");
  std::string Error;
  std::optional<sparc::Module> M = sparc::assemble(P.Asm, &Error);
  ASSERT_TRUE(M.has_value());
  std::optional<policy::Policy> Pol = policy::parsePolicy(P.Policy, &Error);
  ASSERT_TRUE(Pol.has_value());
  DiagnosticEngine Diags;
  std::optional<CheckContext> Ctx = prepare(*M, *Pol, Diags);
  ASSERT_TRUE(Ctx.has_value()) << Diags.str();
  PropagationResult Prop = propagate(*Ctx);

  std::string Listing = renderTypestateListing(*Ctx, Prop);
  // The Figure 2 initial annotations are visible at line 1 ...
  EXPECT_NE(Listing.find("%o0: <int32[n], {e}, fo>"), std::string::npos)
      << Listing;
  // ... and every instruction is listed.
  EXPECT_NE(Listing.find("13:"), std::string::npos);

  AnnotationResult Annot = annotateAndVerifyLocal(*Ctx, Prop);
  std::string Conds = renderObligations(*Ctx, Annot);
  EXPECT_NE(Conds.find("array-bounds"), std::string::npos);
  EXPECT_NE(Conds.find("4*n"), std::string::npos) << Conds;
}

TEST(WideningStress, LongCountingLoopTerminates) {
  // A loop whose counter grows for a million iterations: interval
  // widening must keep the fixpoint finite and the verdict correct.
  const char *Policy = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";
  const char *Asm = R"(
  clr %g3
loop:
  cmp %g3,%o1
  bge done
  nop
  sll %g3,2,%g2
  ld [%o0+%g2],%g1
  add %g3,3,%g3    ! stride 3: intervals keep growing until widened
  ba loop
  nop
done:
  retl
  nop
)";
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(Asm, Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_TRUE(R.Safe) << R.Diags.str();
}

} // namespace
