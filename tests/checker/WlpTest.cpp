//===- WlpTest.cpp - Backward (wlp) transformers --------------------------===//

#include "checker/Wlp.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::sparc;
using mcsafe::policy::regValueVar;

namespace {

struct Session {
  Module M;
  policy::Policy Pol;
  DiagnosticEngine Diags;
  std::optional<CheckContext> Ctx;
  PropagationResult Prop;
  std::unique_ptr<WlpEngine> Engine;

  Session(const char *Asm, const char *PolicyText = R"(
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,w,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)") {
    std::string Error;
    std::optional<Module> Mod = assemble(Asm, &Error);
    EXPECT_TRUE(Mod.has_value()) << Error;
    M = std::move(*Mod);
    std::optional<policy::Policy> P =
        policy::parsePolicy(PolicyText, &Error);
    EXPECT_TRUE(P.has_value()) << Error;
    Pol = std::move(*P);
    Ctx = prepare(M, Pol, Diags);
    EXPECT_TRUE(Ctx.has_value()) << Diags.str();
    Prop = propagate(*Ctx);
    Engine = std::make_unique<WlpEngine>(*Ctx, Prop);
  }

  cfg::NodeId nodeAt(uint32_t Line) const {
    for (cfg::NodeId Id = 0; Id < Ctx->Graph.size(); ++Id)
      if (Ctx->Graph.node(Id).Kind == cfg::NodeKind::Normal &&
          Ctx->Graph.node(Id).InstIndex == Line - 1)
        return Id;
    return cfg::InvalidNode;
  }
};

FormulaRef geVar(VarId V, int64_t C) {
  return Formula::atom(
      Constraint::ge(LinearExpr::variable(V).plusConstant(-C)));
}

TEST(Wlp, MovSubstitutes) {
  Session S("mov %o0,%o2\nretl\nnop\n");
  // wlp(mov %o0,%o2; %o2 >= 5) == %o0 >= 5.
  FormulaRef Post = geVar(regValueVar(0, O2), 5);
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(1), Post);
  FormulaRef Expected = geVar(regValueVar(0, O0), 5);
  EXPECT_TRUE(Formula::equal(Pre, Expected))
      << Pre->str() << " vs " << Expected->str();
}

TEST(Wlp, AddIsLinearEvenSelfReferential) {
  Session S("add %o0,%g2,%o0\nretl\nnop\n");
  // wlp(%o0 += %g2; %o0 >= 5) == %o0 + %g2 >= 5.
  FormulaRef Post = geVar(regValueVar(0, O0), 5);
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(1), Post);
  LinearExpr E = LinearExpr::variable(regValueVar(0, O0)) +
                 LinearExpr::variable(regValueVar(0, Reg(2)));
  FormulaRef Expected = Formula::atom(Constraint::ge(E.plusConstant(-5)));
  EXPECT_TRUE(Formula::equal(Pre, Expected))
      << Pre->str() << " vs " << Expected->str();
}

TEST(Wlp, SllScalesByPowerOfTwo) {
  Session S("sll %g3,2,%g2\nretl\nnop\n");
  // wlp(%g2 = 4*%g3; %g2 < 4n) == 4*%g3 < 4n (i.e. %g3 < n tightened).
  VarId G2 = regValueVar(0, Reg(2));
  VarId G3 = regValueVar(0, Reg(3));
  VarId N = varId("n");
  FormulaRef Post = Formula::atom(Constraint::lt(
      LinearExpr::variable(G2), LinearExpr::variable(N).scaled(4)));
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(1), Post);
  // gcd-tightening turns 4n - 4g3 - 1 >= 0 into n - g3 - 1 >= 0.
  FormulaRef Expected = Formula::atom(Constraint::lt(
      LinearExpr::variable(G3), LinearExpr::variable(N)));
  EXPECT_TRUE(Formula::equal(Pre, Expected))
      << Pre->str() << " vs " << Expected->str();
}

TEST(Wlp, CmpSetsIcc) {
  Session S("cmp %g3,%o1\nretl\nnop\n");
  // wlp(icc := %g3 - %o1; icc < 0) == %g3 < %o1 (the paper's step 3).
  LinearExpr Icc = LinearExpr::variable(policy::iccVar());
  FormulaRef Post =
      Formula::atom(Constraint::ge((-Icc).plusConstant(-1)));
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(1), Post);
  const FreeVarSet &Free = Pre->freeVars();
  EXPECT_FALSE(Free.count(policy::iccVar()));
  EXPECT_TRUE(Free.count(regValueVar(0, Reg(3))));
  EXPECT_TRUE(Free.count(regValueVar(0, O1)));
}

TEST(Wlp, NonLinearOpsHavoc) {
  Session S("xor %o0,%o1,%o2\nretl\nnop\n");
  FormulaRef Post = geVar(regValueVar(0, O2), 0);
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(1), Post);
  // %o2 was havocked: the formula now references a fresh variable, not
  // %o2, and is not a tautology.
  EXPECT_FALSE(Pre->freeVars().count(regValueVar(0, O2)));
  EXPECT_FALSE(Pre->isTrue());
}

TEST(Wlp, UntouchedVarsPassThrough) {
  Session S("clr %o3\nretl\nnop\n");
  FormulaRef Post = geVar(regValueVar(0, O4), 1);
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(1), Post);
  EXPECT_TRUE(Formula::equal(Pre, Post));
}

TEST(Wlp, StrongStoreSubstitutesLocationValue) {
  const char *Policy = R"(
loc cell : int32 state=init
region H { cell }
allow H : int32 : r,w,o
invoke %o0 = &cell
)";
  Session S("st %o1,[%o0]\nretl\nnop\n", Policy);
  // wlp(val:cell := %o1; val:cell >= 3) == %o1 >= 3.
  FormulaRef Post = geVar(policy::locValueVar("cell"), 3);
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(1), Post);
  FormulaRef Expected = geVar(regValueVar(0, O1), 3);
  EXPECT_TRUE(Formula::equal(Pre, Expected))
      << Pre->str() << " vs " << Expected->str();
}

TEST(Wlp, WeakStoreHavocsSummary) {
  Session S(R"(
  sll %o1,2,%g1
  add %o0,%g1,%o2
  st %g0,[%o2]
  retl
  nop
)");
  // A store through the summary element havocs val:e.
  FormulaRef Post = geVar(policy::locValueVar("e"), 0);
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(3), Post);
  EXPECT_FALSE(Pre->freeVars().count(policy::locValueVar("e")));
}

TEST(Wlp, EdgeConditionsOverIcc) {
  Session S("retl\nnop\n");
  LinearExpr Icc = LinearExpr::variable(policy::iccVar());
  cfg::CfgEdge E;
  E.Kind = cfg::EdgeKind::Taken;
  E.BranchOp = Opcode::BL;
  FormulaRef C = S.Engine->edgeCondition(E);
  // bl taken: icc < 0.
  EXPECT_TRUE(Formula::equal(
      C, Formula::atom(Constraint::ge((-Icc).plusConstant(-1)))));
  E.Kind = cfg::EdgeKind::NotTaken;
  C = S.Engine->edgeCondition(E);
  EXPECT_TRUE(Formula::equal(C, Formula::atom(Constraint::ge(Icc))));
  // Unsigned branches give no linear information.
  E.BranchOp = Opcode::BGU;
  EXPECT_TRUE(S.Engine->edgeCondition(E)->isTrue());
  // Flow edges are unconditional.
  E.Kind = cfg::EdgeKind::Flow;
  E.BranchOp = Opcode::BL;
  EXPECT_TRUE(S.Engine->edgeCondition(E)->isTrue());
}

TEST(Wlp, BneEdgeIsDisequality) {
  Session S("retl\nnop\n");
  cfg::CfgEdge E;
  E.Kind = cfg::EdgeKind::Taken;
  E.BranchOp = Opcode::BNE;
  FormulaRef C = S.Engine->edgeCondition(E);
  EXPECT_EQ(C->kind(), FormulaKind::Or); // icc != 0 splits into two GEs.
}

TEST(Wlp, ModifiedVarsCollectsTargets) {
  Session S(R"(
  clr %g3
  inc %g3
  cmp %g3,%o1
  bl 2
  nop
  retl
  nop
)");
  std::vector<cfg::NodeId> Body;
  for (cfg::NodeId Id = 0; Id < S.Ctx->Graph.size(); ++Id)
    Body.push_back(Id);
  std::set<VarId> Modified = S.Engine->modifiedVars(Body);
  EXPECT_TRUE(Modified.count(regValueVar(0, Reg(3))));
  EXPECT_TRUE(Modified.count(policy::iccVar()));
  EXPECT_FALSE(Modified.count(regValueVar(0, O1)));
}

TEST(Wlp, SaveRenamesAcrossWindows) {
  Session S(R"(
  save %sp,-96,%sp
  ret
  restore
)");
  // wlp(save; %i0@1 >= 2) == %o0@0 >= 2.
  FormulaRef Post = geVar(regValueVar(1, Reg(24)), 2);
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(1), Post);
  FormulaRef Expected = geVar(regValueVar(0, O0), 2);
  EXPECT_TRUE(Formula::equal(Pre, Expected))
      << Pre->str() << " vs " << Expected->str();
  // The new stack pointer is old %sp + imm.
  FormulaRef SpPost = geVar(regValueVar(1, SP), 0);
  FormulaRef SpPre = S.Engine->transformNode(S.nodeAt(1), SpPost);
  LinearExpr E =
      LinearExpr::variable(regValueVar(0, SP)).plusConstant(-96);
  EXPECT_TRUE(Formula::equal(SpPre, Formula::atom(Constraint::ge(E))))
      << SpPre->str();
  // New locals are havocked.
  FormulaRef LPost = geVar(regValueVar(1, L0), 0);
  FormulaRef LPre = S.Engine->transformNode(S.nodeAt(1), LPost);
  EXPECT_FALSE(LPre->freeVars().count(regValueVar(1, L0)));
}

TEST(Wlp, RestoreMovesCalleeInsToCallerOuts) {
  Session S(R"(
  save %sp,-96,%sp
  ret
  restore
)");
  // wlp(restore; %o0@0 >= 1) == %i0@1 >= 1.
  FormulaRef Post = geVar(regValueVar(0, O0), 1);
  FormulaRef Pre = S.Engine->transformNode(S.nodeAt(3), Post);
  FormulaRef Expected = geVar(regValueVar(1, Reg(24)), 1);
  EXPECT_TRUE(Formula::equal(Pre, Expected))
      << Pre->str() << " vs " << Expected->str();
}

} // namespace
