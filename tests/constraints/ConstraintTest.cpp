//===- ConstraintTest.cpp -------------------------------------------------===//

#include "constraints/Constraint.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

LinearExpr x() { return LinearExpr::variable(varId("x")); }
LinearExpr y() { return LinearExpr::variable(varId("y")); }

TEST(Constraint, GeTighteningDividesByGcd) {
  // 2x - 3 >= 0  ->  x - 2 >= 0 (floor(-3/2) = -2): x >= 2, exact over Z.
  Constraint C = Constraint::ge(x().scaled(2).plusConstant(-3));
  EXPECT_EQ(C.kind(), ConstraintKind::GE);
  EXPECT_EQ(C.expr().coeff(varId("x")), 1);
  EXPECT_EQ(C.expr().constantValue(), -2);
}

TEST(Constraint, ComparisonBuilders) {
  // x < y  ==  y - x - 1 >= 0.
  Constraint C = Constraint::lt(x(), y());
  EXPECT_EQ(C.expr().coeff(varId("x")), -1);
  EXPECT_EQ(C.expr().coeff(varId("y")), 1);
  EXPECT_EQ(C.expr().constantValue(), -1);

  Constraint Le = Constraint::le(x(), y());
  EXPECT_EQ(Le.expr().constantValue(), 0);

  Constraint Gt = Constraint::gt(x(), y());
  EXPECT_EQ(Gt.expr().coeff(varId("x")), 1);
  EXPECT_EQ(Gt.expr().constantValue(), -1);
}

TEST(Constraint, EqGcdNormalization) {
  // 2x - 4 == 0  ->  x - 2 == 0.
  Constraint C = Constraint::eq(x().scaled(2).plusConstant(-4));
  EXPECT_EQ(C.expr().coeff(varId("x")), 1);
  EXPECT_EQ(C.expr().constantValue(), -2);
}

TEST(Constraint, EqIndivisibleIsFalse) {
  // 2x - 3 == 0 has no integer solution.
  Constraint C = Constraint::eq(x().scaled(2).plusConstant(-3));
  EXPECT_EQ(C.constantTruth(), false);
}

TEST(Constraint, EqSignCanonicalization) {
  Constraint A = Constraint::eq(x() - y());
  Constraint B = Constraint::eq(y() - x());
  EXPECT_TRUE(A == B);
}

TEST(Constraint, ConstantTruth) {
  EXPECT_EQ(Constraint::ge(LinearExpr::constant(0)).constantTruth(), true);
  EXPECT_EQ(Constraint::ge(LinearExpr::constant(-1)).constantTruth(), false);
  EXPECT_EQ(Constraint::eq(LinearExpr::constant(0)).constantTruth(), true);
  EXPECT_EQ(Constraint::eq(LinearExpr::constant(2)).constantTruth(), false);
  EXPECT_FALSE(Constraint::ge(x()).constantTruth().has_value());
}

TEST(Constraint, DivisibilityNormalization) {
  // 4 | (5x + 9)  ->  4 | (x + 1).
  Constraint C = Constraint::divides(4, x().scaled(5).plusConstant(9));
  EXPECT_EQ(C.kind(), ConstraintKind::DIV);
  EXPECT_EQ(C.expr().coeff(varId("x")), 1);
  EXPECT_EQ(C.expr().constantValue(), 1);
}

TEST(Constraint, DivisibilityConstantTruth) {
  EXPECT_EQ(Constraint::divides(4, LinearExpr::constant(8)).constantTruth(),
            true);
  EXPECT_EQ(Constraint::divides(4, LinearExpr::constant(6)).constantTruth(),
            false);
  EXPECT_EQ(Constraint::divides(1, x()).constantTruth(), true);
  EXPECT_EQ(Constraint::notDivides(1, x()).constantTruth(), false);
  EXPECT_EQ(
      Constraint::notDivides(4, LinearExpr::constant(6)).constantTruth(),
      true);
}

TEST(Constraint, DivisibilityDropsMultipleCoefficients) {
  // 4 | (4x + y)  ->  4 | y.
  Constraint C = Constraint::divides(4, x().scaled(4) + y());
  EXPECT_EQ(C.expr().coeff(varId("x")), 0);
  EXPECT_EQ(C.expr().coeff(varId("y")), 1);
}

TEST(Constraint, SubstitutePreservesKind) {
  Constraint C = Constraint::divides(4, x());
  Constraint S = C.substitute(varId("x"), y().scaled(4));
  EXPECT_EQ(S.constantTruth(), true); // 4 | 4y is trivially true.

  Constraint G = Constraint::ge(x().plusConstant(-1));
  Constraint GS = G.substitute(varId("x"), LinearExpr::constant(0));
  EXPECT_EQ(GS.constantTruth(), false);
}

TEST(Constraint, PoisonGivesNoTruth) {
  Constraint C =
      Constraint::ge(LinearExpr::constant(INT64_MAX).plusConstant(1));
  EXPECT_TRUE(C.isPoisoned());
  EXPECT_FALSE(C.constantTruth().has_value());
}

TEST(Constraint, Printing) {
  EXPECT_EQ(Constraint::ge(x().plusConstant(-2)).str(), "x - 2 >= 0");
  EXPECT_EQ(Constraint::divides(4, x()).str(), "4 | x");
  EXPECT_EQ(Constraint::notDivides(4, x()).str(), "4 !| x");
}

} // namespace
