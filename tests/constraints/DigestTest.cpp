//===- DigestTest.cpp - Golden values for the stable digests --------------===//
//
// Pins the exact bit patterns of the support/Digest.h mixer and of
// stableFormulaDigest(). These values are the persistence contract of
// the certificate store: a certificate written by any build must hash
// identically in any other build, so a failure here means either the
// algorithm changed (bump CertStore::FormatVersion) or a platform is
// computing different digests (a bug — the functions are pure uint64_t
// arithmetic).
//
//===----------------------------------------------------------------------===//

#include "constraints/Serialize.h"
#include "support/Digest.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using support::combine64;
using support::digestBytes;
using support::mix64;
using support::signedBits;

namespace {

LinearExpr var(const char *Name) { return LinearExpr::variable(varId(Name)); }

TEST(Digest, Mix64GoldenValues) {
  // splitmix64's finalizer fixes 0 (an acceptable quirk: every digest
  // that matters runs through a seeded accumulator or combine64 first).
  EXPECT_EQ(mix64(0), 0x0000000000000000ULL);
  EXPECT_EQ(mix64(1), 0x5692161d100b05e5ULL);
  EXPECT_EQ(mix64(0xdeadbeefULL), 0x4e062702ec929eeaULL);
}

TEST(Digest, Combine64GoldenValuesAndOrderSensitivity) {
  EXPECT_EQ(combine64(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(combine64(1, 2), 0x96403e918bdbd015ULL);
  EXPECT_EQ(combine64(2, 1), 0x2c1c719d2c17b759ULL);
  // Field order is part of multi-field digests.
  EXPECT_NE(combine64(1, 2), combine64(2, 1));
}

TEST(Digest, DigestBytesGoldenValues) {
  EXPECT_EQ(digestBytes(""), 0xa39fc2e1dfa4ad33ULL);
  EXPECT_EQ(digestBytes("ab"), 0xb82f5e1c6c19a7d9ULL);
  EXPECT_EQ(digestBytes("mcsafe"), 0xfbd30324ebe58a5eULL);
}

TEST(Digest, SignedBitsIsTwosComplement) {
  EXPECT_EQ(signedBits(-1), 0xffffffffffffffffULL);
  EXPECT_EQ(signedBits(INT64_MIN), 0x8000000000000000ULL);
  EXPECT_EQ(signedBits(42), 42ULL);
}

TEST(Digest, StreamingDigestMatchesManualCombineChain) {
  support::Digest D;
  D.add(7).addSigned(-3).addBytes("x");
  uint64_t H = 0x6d63736166655f64ULL; // The documented fixed seed.
  H = combine64(H, 7);
  H = combine64(H, signedBits(-3));
  H = combine64(H, digestBytes("x"));
  EXPECT_EQ(D.value(), H);
}

TEST(Digest, LinearExprHashMatchesSpecifiedRecomputation) {
  LinearExpr E = var("in.x").scaled(3) + var("in.y").scaled(-2);
  E = E.plusConstant(17);
  support::Digest D;
  D.addSigned(17);
  for (const auto &[V, Coeff] : E.terms()) {
    D.add(V.index());
    D.addSigned(Coeff);
  }
  D.add(0); // Not poisoned.
  EXPECT_EQ(E.hash(), D.value());
}

TEST(Digest, ConstraintHashMatchesSpecifiedRecomputation) {
  Constraint C = Constraint::divides(8, var("in.p"));
  uint64_t H = C.expr().hash();
  H = combine64(H, static_cast<uint64_t>(C.kind()));
  H = combine64(H, signedBits(C.modulus()));
  EXPECT_EQ(C.hash(), H);
}

// The stableFormulaDigest goldens below pin the full pipeline: term
// ordering by variable name, the pool byte layout, and digestBytes.
// Any byte-format change lands here first.

TEST(Digest, StableFormulaDigestGoldenValues) {
  FormulaRef GeX = Formula::atom(Constraint::ge(var("in.x").plusConstant(-5)));
  EXPECT_EQ(stableFormulaDigest(GeX), 0xdd5a56d735d825cbULL);

  FormulaRef C = Formula::conj2(GeX, Formula::atom(Constraint::ge(var("in.y"))));
  EXPECT_EQ(stableFormulaDigest(C), 0x059455649b63408cULL);

  FormulaRef Ex = Formula::exists(varId("in.y"), C);
  EXPECT_EQ(stableFormulaDigest(Ex), 0x72a8ef854c920fb3ULL);

  FormulaRef Dv =
      Formula::atom(Constraint::divides(4, var("in.x") + var("in.y").scaled(2)));
  EXPECT_EQ(stableFormulaDigest(Dv), 0x9dbbdbf610b33184ULL);

  EXPECT_EQ(stableFormulaDigest(Formula::mkTrue()), 0x7f95e2d377cf08fbULL);
  EXPECT_EQ(stableFormulaDigest(Formula::mkFalse()), 0x42ff6bbbc8781ed0ULL);
}

TEST(Digest, StableFormulaDigestIgnoresVarInterningOrder) {
  // The digest orders atom terms by variable *name*; the order this
  // process happened to intern the ids must not show through. Build the
  // same formula under namespaces that intern the variables in opposite
  // orders.
  uint64_t D1, D2;
  {
    VarNamespace NS;
    VarId A = varId("zz.a"), B = varId("zz.b");
    D1 = stableFormulaDigest(Formula::atom(Constraint::ge(
        LinearExpr::variable(A) + LinearExpr::variable(B).scaled(2))));
  }
  {
    VarNamespace NS;
    VarId B = varId("zz.b"), A = varId("zz.a"); // Reverse interning order.
    D2 = stableFormulaDigest(Formula::atom(Constraint::ge(
        LinearExpr::variable(A) + LinearExpr::variable(B).scaled(2))));
  }
  EXPECT_EQ(D1, D2);
}

TEST(Digest, StableFormulaDigestSeparatesStructure) {
  FormulaRef A = Formula::atom(Constraint::ge(var("in.x")));
  FormulaRef B = Formula::atom(Constraint::ge(var("in.y")));
  FormulaRef C = Formula::atom(Constraint::eq(var("in.x")));
  EXPECT_NE(stableFormulaDigest(A), stableFormulaDigest(B));
  EXPECT_NE(stableFormulaDigest(A), stableFormulaDigest(C));
  EXPECT_NE(stableFormulaDigest(Formula::conj2(A, B)),
            stableFormulaDigest(Formula::disj2(A, B)));
}

} // namespace
