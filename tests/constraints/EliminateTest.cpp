//===- EliminateTest.cpp --------------------------------------------------===//

#include "constraints/Eliminate.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

LinearExpr g3() { return LinearExpr::variable(varId("e.%g3")); }
LinearExpr o1() { return LinearExpr::variable(varId("e.%o1")); }
LinearExpr n() { return LinearExpr::variable(varId("e.n")); }

TEST(Eliminate, ProjectSimpleBounds) {
  // {x >= a, x <= b} projected over x gives a <= b.
  VarId X = varId("e.x");
  LinearExpr EX = LinearExpr::variable(X);
  LinearExpr A = LinearExpr::variable(varId("e.a"));
  LinearExpr B = LinearExpr::variable(varId("e.b"));
  auto Result = projectOut({Constraint::ge(EX - A), Constraint::le(EX, B)},
                           {X});
  ASSERT_TRUE(Result.has_value());
  ASSERT_EQ(Result->size(), 1u);
  // b - a >= 0.
  EXPECT_EQ((*Result)[0].expr().coeff(varId("e.a")), -1);
  EXPECT_EQ((*Result)[0].expr().coeff(varId("e.b")), 1);
}

TEST(Eliminate, ProjectUsesEqualityExactly) {
  // {x == y + 1, x <= 5} over x gives y + 1 <= 5, i.e. -y + 4 >= 0.
  VarId X = varId("e.x2");
  VarId Y = varId("e.y2");
  LinearExpr EX = LinearExpr::variable(X);
  LinearExpr EY = LinearExpr::variable(Y);
  auto Result = projectOut({Constraint::eq(EX - EY.plusConstant(1)),
                            Constraint::le(EX, LinearExpr::constant(5))},
                           {X});
  ASSERT_TRUE(Result.has_value());
  ASSERT_EQ(Result->size(), 1u);
  EXPECT_EQ((*Result)[0].expr().coeff(Y), -1);
  EXPECT_EQ((*Result)[0].expr().constantValue(), 4);
}

TEST(Eliminate, ProjectDropsDivisibilityOnTarget) {
  VarId X = varId("e.x3");
  LinearExpr EX = LinearExpr::variable(X);
  auto Result = projectOut({Constraint::divides(4, EX)}, {X});
  ASSERT_TRUE(Result.has_value());
  EXPECT_TRUE(Result->empty());
}

TEST(Eliminate, ProjectOneSidedRemovesAllConstraints) {
  VarId X = varId("e.x4");
  LinearExpr EX = LinearExpr::variable(X);
  auto Result = projectOut({Constraint::ge(EX.plusConstant(-3))}, {X});
  ASSERT_TRUE(Result.has_value());
  EXPECT_TRUE(Result->empty());
}

TEST(Eliminate, PaperGeneralizationExample) {
  // Section 5.2.2: W(1) = (%g3+1 < %o1  =>  %g3+1 < n). Negating yields
  // the single disjunct (%g3+1 < %o1) && (%g3+1 >= n); eliminating %g3
  // gives %o1 > n (as "%o1 - n - 1 >= 0" after FM); negating again gives
  // the generalization %o1 <= n.
  FormulaRef W1 = Formula::implies(
      Formula::atom(Constraint::lt(g3().plusConstant(1), o1())),
      Formula::atom(Constraint::lt(g3().plusConstant(1), n())));
  std::vector<FormulaRef> Candidates = generalize(W1, {varId("e.%g3")});
  // The projected candidate (the paper's generalization) plus the
  // unprojected per-disjunct negation (which equals W1 itself here).
  ASSERT_GE(Candidates.size(), 1u);
  const FormulaRef &G = Candidates[0];
  ASSERT_EQ(G->kind(), FormulaKind::Atom);
  // not(%o1 - n - 1 >= 0)  ==  n - %o1 >= 0, i.e. %o1 <= n.
  EXPECT_EQ(G->constraint().expr().coeff(varId("e.n")), 1);
  EXPECT_EQ(G->constraint().expr().coeff(varId("e.%o1")), -1);
  EXPECT_EQ(G->constraint().expr().constantValue(), 0);
}

TEST(Eliminate, GeneralizeConjunctionKeepsOnlyDisjunctNegations) {
  // f = (x >= 0 && x <= 5): not(f) has two one-sided disjuncts on x, both
  // of which eliminate to "true" under projection; the surviving
  // candidates are the unprojected per-disjunct negations (x >= 0 and
  // x <= 5 themselves).
  VarId X = varId("e.x5");
  LinearExpr EX = LinearExpr::variable(X);
  FormulaRef F = Formula::conj2(
      Formula::atom(Constraint::ge(EX)),
      Formula::atom(Constraint::le(EX, LinearExpr::constant(5))));
  std::vector<FormulaRef> Cands = generalize(F, {X});
  ASSERT_EQ(Cands.size(), 2u);
  for (const FormulaRef &C : Cands)
    EXPECT_EQ(C->kind(), FormulaKind::Atom);
}

TEST(Eliminate, GeneralizeWithNoVarsGivesDisjunctNegations) {
  // With nothing to eliminate, each disjunct of not(f) still produces
  // its negation (here: f itself, a single atom).
  FormulaRef F = Formula::atom(Constraint::ge(g3()));
  std::vector<FormulaRef> Cands = generalize(F, {});
  ASSERT_EQ(Cands.size(), 1u);
  EXPECT_TRUE(Formula::equal(Cands[0], F));
}

TEST(Eliminate, ProjectRespectsConstraintLimit) {
  // 30 lowers x 30 uppers would exceed a limit of 100.
  VarId X = varId("e.x6");
  LinearExpr EX = LinearExpr::variable(X);
  std::vector<Constraint> System;
  for (int I = 0; I < 30; ++I) {
    System.push_back(Constraint::ge(
        EX - LinearExpr::variable(varId("e.lo" + std::to_string(I)))));
    System.push_back(Constraint::le(
        EX, LinearExpr::variable(varId("e.hi" + std::to_string(I)))));
  }
  EXPECT_FALSE(projectOut(System, {X}, /*MaxConstraints=*/100).has_value());
  EXPECT_TRUE(projectOut(System, {X}, /*MaxConstraints=*/2000).has_value());
}

} // namespace
