//===- FormulaTest.cpp ----------------------------------------------------===//

#include "constraints/Formula.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

LinearExpr x() { return LinearExpr::variable(varId("x")); }
LinearExpr y() { return LinearExpr::variable(varId("y")); }

FormulaRef geAtom(LinearExpr E) {
  return Formula::atom(Constraint::ge(std::move(E)));
}

TEST(Formula, TrueFalseSingletons) {
  EXPECT_TRUE(Formula::mkTrue()->isTrue());
  EXPECT_TRUE(Formula::mkFalse()->isFalse());
  EXPECT_EQ(Formula::mkTrue(), Formula::mkTrue());
}

TEST(Formula, AtomCollapsesConstants) {
  EXPECT_TRUE(Formula::atom(Constraint::ge(LinearExpr::constant(3)))->isTrue());
  EXPECT_TRUE(
      Formula::atom(Constraint::ge(LinearExpr::constant(-1)))->isFalse());
}

TEST(Formula, ConjAbsorbsAndFlattens) {
  FormulaRef A = geAtom(x());
  FormulaRef B = geAtom(y());
  EXPECT_TRUE(Formula::conj({})->isTrue());
  EXPECT_TRUE(Formula::conj({A, Formula::mkFalse()})->isFalse());
  EXPECT_EQ(Formula::conj({A, Formula::mkTrue()}), A);
  FormulaRef Nested = Formula::conj2(A, Formula::conj2(B, A));
  EXPECT_EQ(Nested->kind(), FormulaKind::And);
  EXPECT_EQ(Nested->children().size(), 2u); // Flattened and deduplicated.
}

TEST(Formula, DisjAbsorbsAndFlattens) {
  FormulaRef A = geAtom(x());
  EXPECT_TRUE(Formula::disj({})->isFalse());
  EXPECT_TRUE(Formula::disj({A, Formula::mkTrue()})->isTrue());
  EXPECT_EQ(Formula::disj({A, Formula::mkFalse()}), A);
}

TEST(Formula, NegateAtomGe) {
  // not(x >= 0)  ==  -x - 1 >= 0.
  FormulaRef N = Formula::negate(geAtom(x()));
  ASSERT_EQ(N->kind(), FormulaKind::Atom);
  EXPECT_EQ(N->constraint().expr().coeff(varId("x")), -1);
  EXPECT_EQ(N->constraint().expr().constantValue(), -1);
}

TEST(Formula, NegateAtomEqSplits) {
  FormulaRef N = Formula::negate(Formula::atom(Constraint::eq(x() - y())));
  EXPECT_EQ(N->kind(), FormulaKind::Or);
  EXPECT_EQ(N->children().size(), 2u);
}

TEST(Formula, NegateDivAtom) {
  FormulaRef N = Formula::negate(Formula::atom(Constraint::divides(4, x())));
  ASSERT_EQ(N->kind(), FormulaKind::Atom);
  EXPECT_EQ(N->constraint().kind(), ConstraintKind::NDIV);
  // Double negation restores DIV.
  FormulaRef NN = Formula::negate(N);
  EXPECT_EQ(NN->constraint().kind(), ConstraintKind::DIV);
}

TEST(Formula, NegateDeMorgan) {
  FormulaRef F = Formula::conj2(geAtom(x()), geAtom(y()));
  FormulaRef N = Formula::negate(F);
  EXPECT_EQ(N->kind(), FormulaKind::Or);
  // Involution up to structure.
  EXPECT_TRUE(Formula::equal(Formula::negate(N), F));
}

TEST(Formula, NegateSwapsQuantifiers) {
  VarId V = varId("q");
  FormulaRef F = Formula::exists(V, geAtom(LinearExpr::variable(V) - x()));
  ASSERT_EQ(F->kind(), FormulaKind::Exists);
  FormulaRef N = Formula::negate(F);
  EXPECT_EQ(N->kind(), FormulaKind::Forall);
  EXPECT_EQ(N->boundVar(), V);
}

TEST(Formula, QuantifierOverAbsentVarDropped) {
  FormulaRef Body = geAtom(x());
  EXPECT_EQ(Formula::exists(varId("unused_q"), Body), Body);
  EXPECT_EQ(Formula::forall(varId("unused_q2"), Body), Body);
}

TEST(Formula, ImpliesIsMaterial) {
  FormulaRef F = Formula::implies(Formula::mkFalse(), geAtom(x()));
  EXPECT_TRUE(F->isTrue());
  FormulaRef G = Formula::implies(Formula::mkTrue(), geAtom(x()));
  EXPECT_EQ(G->kind(), FormulaKind::Atom);
}

TEST(Formula, FreeVarsRespectBinding) {
  VarId Q = varId("bound_q");
  FormulaRef F = Formula::exists(
      Q, geAtom(LinearExpr::variable(Q) + x()));
  const FreeVarSet &Free = F->freeVars();
  EXPECT_TRUE(Free.count(varId("x")));
  EXPECT_FALSE(Free.count(Q));
}

TEST(Formula, SubstituteStopsAtBinder) {
  VarId Q = varId("binder_q");
  FormulaRef F = Formula::exists(Q, geAtom(LinearExpr::variable(Q) - x()));
  // Substituting the bound variable is a no-op.
  FormulaRef S = Formula::substitute(F, Q, LinearExpr::constant(5));
  EXPECT_TRUE(Formula::equal(S, F));
  // Substituting a free variable goes under the binder.
  FormulaRef S2 = Formula::substitute(F, varId("x"), LinearExpr::constant(1));
  EXPECT_FALSE(Formula::equal(S2, F));
}

TEST(Formula, SubstituteCollapsesToConstant) {
  FormulaRef F = geAtom(x().plusConstant(-5));
  FormulaRef S = Formula::substitute(F, varId("x"), LinearExpr::constant(7));
  EXPECT_TRUE(S->isTrue());
  FormulaRef S2 = Formula::substitute(F, varId("x"), LinearExpr::constant(3));
  EXPECT_TRUE(S2->isFalse());
}

TEST(Formula, EqualAndHashAgree) {
  FormulaRef A = Formula::conj2(geAtom(x()), geAtom(y()));
  FormulaRef B = Formula::conj2(geAtom(x()), geAtom(y()));
  EXPECT_TRUE(Formula::equal(A, B));
  EXPECT_EQ(A->hash(), B->hash());
  FormulaRef C = Formula::disj2(geAtom(x()), geAtom(y()));
  EXPECT_FALSE(Formula::equal(A, C));
}

TEST(Formula, SimplifyPrunesSubsumedGe) {
  // (x - 5 >= 0) && (x - 2 >= 0)  ->  x - 5 >= 0 (the tighter bound).
  FormulaRef F =
      Formula::conj2(geAtom(x().plusConstant(-5)), geAtom(x().plusConstant(-2)));
  FormulaRef S = simplify(F);
  ASSERT_EQ(S->kind(), FormulaKind::Atom);
  EXPECT_EQ(S->constraint().expr().constantValue(), -5);
}

TEST(Formula, SizeCountsNodes) {
  FormulaRef F = Formula::conj2(geAtom(x()), geAtom(y()));
  EXPECT_EQ(F->size(), 3u);
}

TEST(Formula, Printing) {
  FormulaRef F = Formula::conj2(geAtom(x()), geAtom(y()));
  EXPECT_EQ(F->str(), "(x >= 0 && y >= 0)");
  EXPECT_EQ(Formula::mkTrue()->str(), "true");
}

} // namespace
