//===- InternTest.cpp - Hash-consed formula interner ----------------------===//

#include "constraints/Formula.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

using namespace mcsafe;

namespace {

LinearExpr var(const char *Name) { return LinearExpr::variable(varId(Name)); }

FormulaRef geAtom(LinearExpr E) {
  return Formula::atom(Constraint::ge(std::move(E)));
}

TEST(Intern, StructurallyEqualFormulasShareOneNode) {
  FormulaRef A = geAtom(var("in.x").plusConstant(-5));
  FormulaRef B = geAtom(var("in.x").plusConstant(-5));
  EXPECT_EQ(A.get(), B.get()); // Pointer equality, not just structural.
  EXPECT_EQ(A->id(), B->id());

  FormulaRef C1 = Formula::conj2(A, geAtom(var("in.y")));
  FormulaRef C2 = Formula::conj2(B, geAtom(var("in.y")));
  EXPECT_EQ(C1.get(), C2.get());
}

TEST(Intern, DistinctFormulasGetDistinctIds) {
  FormulaRef A = geAtom(var("in.x"));
  FormulaRef B = geAtom(var("in.x").plusConstant(-1));
  EXPECT_NE(A.get(), B.get());
  EXPECT_NE(A->id(), B->id());
}

TEST(Intern, HashIsMemoizedAndStructural) {
  FormulaRef A = Formula::conj2(geAtom(var("in.h1")), geAtom(var("in.h2")));
  FormulaRef B = Formula::conj2(geAtom(var("in.h1")), geAtom(var("in.h2")));
  EXPECT_EQ(A->hash(), B->hash());
  // Same pointer, so trivially the same memo.
  EXPECT_EQ(A.get(), B.get());
}

TEST(Intern, FreeVarsAreMemoizedPerNode) {
  FormulaRef F = Formula::conj2(geAtom(var("in.fv1") + var("in.fv2")),
                                geAtom(var("in.fv2")));
  const FreeVarSet &S1 = F->freeVars();
  const FreeVarSet &S2 = F->freeVars();
  EXPECT_EQ(&S1, &S2); // One set per node, computed at intern time.
  EXPECT_TRUE(S1.contains(varId("in.fv1")));
  EXPECT_TRUE(S1.contains(varId("in.fv2")));
  EXPECT_EQ(S1.size(), 2u);
}

TEST(Intern, NegateIsMemoizedAndInvolutive) {
  FormulaRef F = Formula::conj2(geAtom(var("in.n1")), geAtom(var("in.n2")));
  FormulaRef N1 = Formula::negate(F);
  FormulaRef N2 = Formula::negate(F);
  EXPECT_EQ(N1.get(), N2.get()); // Memoized on the node.
  EXPECT_EQ(Formula::negate(N1).get(), F.get());
}

TEST(Intern, SimplifyIsMemoized) {
  FormulaRef F = Formula::conj2(geAtom(var("in.s").plusConstant(-5)),
                                geAtom(var("in.s").plusConstant(-2)));
  FormulaRef S1 = simplify(F);
  FormulaRef S2 = simplify(F);
  EXPECT_EQ(S1.get(), S2.get());
}

TEST(Intern, StatsGrowMonotonically) {
  Formula::InternStats Before = Formula::internStats();
  // A fresh variable name guarantees at least one new node...
  FormulaRef A = geAtom(var("in.stats_fresh_node"));
  Formula::InternStats Mid = Formula::internStats();
  EXPECT_GT(Mid.Nodes, Before.Nodes);
  EXPECT_GT(Mid.Bytes, 0u);
  // ...and re-building it is a dedup hit, not a new node.
  FormulaRef B = geAtom(var("in.stats_fresh_node"));
  EXPECT_EQ(A.get(), B.get());
  Formula::InternStats After = Formula::internStats();
  EXPECT_EQ(After.Nodes, Mid.Nodes);
  EXPECT_GT(After.DedupHits, Mid.DedupHits);
}

// The TSan workhorse: many threads intern the same formula family
// concurrently. Every thread must end up with identical canonical
// pointers, and no data race may be reported on the shards or the
// negation memos.
TEST(Intern, ConcurrentInterningConverges) {
  constexpr int Threads = 8;
  constexpr int Reps = 200;
  // Pre-intern the variable names so worker threads only exercise the
  // formula interner, not the name table.
  for (int I = 0; I < 16; ++I)
    varId("in.mt" + std::to_string(I));

  std::vector<std::vector<const Formula *>> Seen(Threads);
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([T, &Seen] {
      for (int R = 0; R < Reps; ++R) {
        int I = R % 16;
        FormulaRef A =
            geAtom(var(("in.mt" + std::to_string(I)).c_str())
                       .plusConstant(-I));
        FormulaRef B = Formula::conj2(
            A, geAtom(var(("in.mt" + std::to_string((I + 1) % 16)).c_str())));
        FormulaRef N = Formula::negate(B);
        Seen[T].push_back(N.get());
      }
    });
  for (std::thread &T : Pool)
    T.join();
  for (int T = 1; T < Threads; ++T)
    EXPECT_EQ(Seen[T], Seen[0]);
}

TEST(Intern, TrueFalseAreProcessSingletons) {
  EXPECT_EQ(Formula::mkTrue().get(), Formula::mkTrue().get());
  EXPECT_EQ(Formula::mkFalse().get(), Formula::mkFalse().get());
  EXPECT_NE(Formula::mkTrue().get(), Formula::mkFalse().get());
}

} // namespace
