//===- LinearExprTest.cpp -------------------------------------------------===//

#include "constraints/LinearExpr.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

VarId X() { return varId("x"); }
VarId Y() { return varId("y"); }

TEST(LinearExpr, ConstantsAndVariables) {
  LinearExpr C = LinearExpr::constant(42);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constantValue(), 42);
  EXPECT_FALSE(C.isPoisoned());

  LinearExpr V = LinearExpr::variable(X());
  EXPECT_FALSE(V.isConstant());
  EXPECT_EQ(V.coeff(X()), 1);
  EXPECT_EQ(V.coeff(Y()), 0);
}

TEST(LinearExpr, AdditionMergesTerms) {
  LinearExpr E = LinearExpr::variable(X()).scaled(3) +
                 LinearExpr::variable(Y()) + LinearExpr::constant(5);
  E = E + LinearExpr::variable(X()).scaled(-3);
  EXPECT_EQ(E.coeff(X()), 0);
  EXPECT_EQ(E.coeff(Y()), 1);
  EXPECT_EQ(E.constantValue(), 5);
  EXPECT_EQ(E.terms().size(), 1u); // Zero coefficients are dropped.
}

TEST(LinearExpr, SubtractionAndNegation) {
  LinearExpr A = LinearExpr::variable(X()).scaled(2).plusConstant(7);
  LinearExpr B = LinearExpr::variable(X()).plusConstant(3);
  LinearExpr D = A - B;
  EXPECT_EQ(D.coeff(X()), 1);
  EXPECT_EQ(D.constantValue(), 4);
  LinearExpr N = -A;
  EXPECT_EQ(N.coeff(X()), -2);
  EXPECT_EQ(N.constantValue(), -7);
}

TEST(LinearExpr, ScalingByZeroGivesZero) {
  LinearExpr E = LinearExpr::variable(X()).plusConstant(9).scaled(0);
  EXPECT_TRUE(E.isZero());
}

TEST(LinearExpr, SubstituteSimple) {
  // (3x + y + 1)[x := y + 2]  ==  4y + 7.
  LinearExpr E = LinearExpr::variable(X()).scaled(3) +
                 LinearExpr::variable(Y()) + LinearExpr::constant(1);
  LinearExpr R = LinearExpr::variable(Y()).plusConstant(2);
  LinearExpr S = E.substitute(X(), R);
  EXPECT_EQ(S.coeff(X()), 0);
  EXPECT_EQ(S.coeff(Y()), 4);
  EXPECT_EQ(S.constantValue(), 7);
}

TEST(LinearExpr, SubstituteSelfReferential) {
  // wlp-style substitution: (x - 5)[x := x + 1]  ==  x - 4.
  LinearExpr E = LinearExpr::variable(X()).plusConstant(-5);
  LinearExpr R = LinearExpr::variable(X()).plusConstant(1);
  LinearExpr S = E.substitute(X(), R);
  EXPECT_EQ(S.coeff(X()), 1);
  EXPECT_EQ(S.constantValue(), -4);
}

TEST(LinearExpr, SubstituteAbsentVarIsIdentity) {
  LinearExpr E = LinearExpr::variable(Y()).plusConstant(5);
  LinearExpr S = E.substitute(X(), LinearExpr::constant(100));
  EXPECT_TRUE(E == S);
}

TEST(LinearExpr, OverflowPoisons) {
  LinearExpr Big = LinearExpr::constant(INT64_MAX);
  LinearExpr P = Big.plusConstant(1);
  EXPECT_TRUE(P.isPoisoned());
  // Poison propagates.
  EXPECT_TRUE((P + LinearExpr::constant(0)).isPoisoned());
  EXPECT_TRUE(P.scaled(2).isPoisoned());
  EXPECT_TRUE(P.substitute(X(), LinearExpr()).isPoisoned());

  LinearExpr BigCoeff = LinearExpr::variable(X()).scaled(INT64_MAX);
  EXPECT_TRUE(BigCoeff.scaled(2).isPoisoned());
  EXPECT_FALSE(BigCoeff.isPoisoned());
}

TEST(LinearExpr, CoeffGcd) {
  LinearExpr E = LinearExpr::variable(X()).scaled(6) +
                 LinearExpr::variable(Y()).scaled(9);
  EXPECT_EQ(E.coeffGcd(), 3);
  EXPECT_EQ(LinearExpr::constant(5).coeffGcd(), 0);
}

TEST(LinearExpr, Printing) {
  // Terms print in interning order; intern the names explicitly first so
  // the order is deterministic regardless of evaluation order.
  VarId G3 = varId("lp.%g3");
  VarId N = varId("lp.n");
  LinearExpr E = LinearExpr::variable(G3).scaled(4) -
                 LinearExpr::variable(N) + LinearExpr::constant(1);
  EXPECT_EQ(E.str(), "4*lp.%g3 - lp.n + 1");
  EXPECT_EQ(LinearExpr::constant(-3).str(), "-3");
  EXPECT_EQ((-LinearExpr::variable(varId("lp.n"))).str(), "-lp.n");
}

TEST(LinearExpr, EqualityAndHash) {
  LinearExpr A = LinearExpr::variable(X()).scaled(2).plusConstant(1);
  LinearExpr B =
      LinearExpr::variable(X()) + LinearExpr::variable(X()).plusConstant(1);
  EXPECT_TRUE(A == B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_FALSE(A == A.plusConstant(1));
}

} // namespace
