//===- LinearExprTest.cpp -------------------------------------------------===//

#include "constraints/LinearExpr.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

VarId X() { return varId("x"); }
VarId Y() { return varId("y"); }

TEST(LinearExpr, ConstantsAndVariables) {
  LinearExpr C = LinearExpr::constant(42);
  EXPECT_TRUE(C.isConstant());
  EXPECT_EQ(C.constantValue(), 42);
  EXPECT_FALSE(C.isPoisoned());

  LinearExpr V = LinearExpr::variable(X());
  EXPECT_FALSE(V.isConstant());
  EXPECT_EQ(V.coeff(X()), 1);
  EXPECT_EQ(V.coeff(Y()), 0);
}

TEST(LinearExpr, AdditionMergesTerms) {
  LinearExpr E = LinearExpr::variable(X()).scaled(3) +
                 LinearExpr::variable(Y()) + LinearExpr::constant(5);
  E = E + LinearExpr::variable(X()).scaled(-3);
  EXPECT_EQ(E.coeff(X()), 0);
  EXPECT_EQ(E.coeff(Y()), 1);
  EXPECT_EQ(E.constantValue(), 5);
  EXPECT_EQ(E.terms().size(), 1u); // Zero coefficients are dropped.
}

TEST(LinearExpr, SubtractionAndNegation) {
  LinearExpr A = LinearExpr::variable(X()).scaled(2).plusConstant(7);
  LinearExpr B = LinearExpr::variable(X()).plusConstant(3);
  LinearExpr D = A - B;
  EXPECT_EQ(D.coeff(X()), 1);
  EXPECT_EQ(D.constantValue(), 4);
  LinearExpr N = -A;
  EXPECT_EQ(N.coeff(X()), -2);
  EXPECT_EQ(N.constantValue(), -7);
}

TEST(LinearExpr, ScalingByZeroGivesZero) {
  LinearExpr E = LinearExpr::variable(X()).plusConstant(9).scaled(0);
  EXPECT_TRUE(E.isZero());
}

TEST(LinearExpr, SubstituteSimple) {
  // (3x + y + 1)[x := y + 2]  ==  4y + 7.
  LinearExpr E = LinearExpr::variable(X()).scaled(3) +
                 LinearExpr::variable(Y()) + LinearExpr::constant(1);
  LinearExpr R = LinearExpr::variable(Y()).plusConstant(2);
  LinearExpr S = E.substitute(X(), R);
  EXPECT_EQ(S.coeff(X()), 0);
  EXPECT_EQ(S.coeff(Y()), 4);
  EXPECT_EQ(S.constantValue(), 7);
}

TEST(LinearExpr, SubstituteSelfReferential) {
  // wlp-style substitution: (x - 5)[x := x + 1]  ==  x - 4.
  LinearExpr E = LinearExpr::variable(X()).plusConstant(-5);
  LinearExpr R = LinearExpr::variable(X()).plusConstant(1);
  LinearExpr S = E.substitute(X(), R);
  EXPECT_EQ(S.coeff(X()), 1);
  EXPECT_EQ(S.constantValue(), -4);
}

TEST(LinearExpr, SubstituteAbsentVarIsIdentity) {
  LinearExpr E = LinearExpr::variable(Y()).plusConstant(5);
  LinearExpr S = E.substitute(X(), LinearExpr::constant(100));
  EXPECT_TRUE(E == S);
}

TEST(LinearExpr, OverflowPoisons) {
  LinearExpr Big = LinearExpr::constant(INT64_MAX);
  LinearExpr P = Big.plusConstant(1);
  EXPECT_TRUE(P.isPoisoned());
  // Poison propagates.
  EXPECT_TRUE((P + LinearExpr::constant(0)).isPoisoned());
  EXPECT_TRUE(P.scaled(2).isPoisoned());
  EXPECT_TRUE(P.substitute(X(), LinearExpr()).isPoisoned());

  LinearExpr BigCoeff = LinearExpr::variable(X()).scaled(INT64_MAX);
  EXPECT_TRUE(BigCoeff.scaled(2).isPoisoned());
  EXPECT_FALSE(BigCoeff.isPoisoned());
}

TEST(LinearExpr, CoeffGcd) {
  LinearExpr E = LinearExpr::variable(X()).scaled(6) +
                 LinearExpr::variable(Y()).scaled(9);
  EXPECT_EQ(E.coeffGcd(), 3);
  EXPECT_EQ(LinearExpr::constant(5).coeffGcd(), 0);
}

TEST(LinearExpr, Printing) {
  // Terms print in interning order; intern the names explicitly first so
  // the order is deterministic regardless of evaluation order.
  VarId G3 = varId("lp.%g3");
  VarId N = varId("lp.n");
  LinearExpr E = LinearExpr::variable(G3).scaled(4) -
                 LinearExpr::variable(N) + LinearExpr::constant(1);
  EXPECT_EQ(E.str(), "4*lp.%g3 - lp.n + 1");
  EXPECT_EQ(LinearExpr::constant(-3).str(), "-3");
  EXPECT_EQ((-LinearExpr::variable(varId("lp.n"))).str(), "-lp.n");
}

TEST(LinearExpr, CoeffBinarySearchEdges) {
  // coeff() binary-searches the sorted term array; probe the positions
  // that bite: absent id (below, between, above), first term, last term.
  VarId Ids[6];
  for (int I = 0; I < 6; ++I)
    Ids[I] = varId("bs.v" + std::to_string(I));
  // Use every other id so the gaps are probeable.
  LinearExpr E = LinearExpr::variable(Ids[1]).scaled(11) +
                 LinearExpr::variable(Ids[3]).scaled(33) +
                 LinearExpr::variable(Ids[5]).scaled(55);
  EXPECT_EQ(E.coeff(Ids[1]), 11); // First term.
  EXPECT_EQ(E.coeff(Ids[3]), 33); // Middle term.
  EXPECT_EQ(E.coeff(Ids[5]), 55); // Last term.
  EXPECT_EQ(E.coeff(Ids[0]), 0);  // Below the first.
  EXPECT_EQ(E.coeff(Ids[2]), 0);  // In a gap.
  EXPECT_EQ(E.coeff(Ids[4]), 0);  // In the last gap.
  EXPECT_EQ(LinearExpr::constant(7).coeff(Ids[0]), 0); // Empty term list.
}

TEST(LinearExpr, InlineStorageSpillsToHeap) {
  // Grow past the 4-term inline buffer and verify nothing is lost.
  std::vector<VarId> Ids;
  for (int I = 0; I < 12; ++I)
    Ids.push_back(varId("sso.v" + std::to_string(I)));
  LinearExpr E;
  for (int I = 0; I < 12; ++I)
    E = E + LinearExpr::variable(Ids[size_t(I)]).scaled(I + 1);
  EXPECT_EQ(E.termCount(), 12u);
  for (int I = 0; I < 12; ++I)
    EXPECT_EQ(E.coeff(Ids[size_t(I)]), I + 1);
  // Terms stay sorted by VarId (the representation invariant).
  auto Terms = E.terms();
  for (size_t I = 1; I < Terms.size(); ++I)
    EXPECT_LT(Terms[I - 1].first, Terms[I].first);
}

TEST(LinearExpr, CopyAndMoveAcrossSpillBoundary) {
  std::vector<VarId> Ids;
  for (int I = 0; I < 8; ++I)
    Ids.push_back(varId("cm.v" + std::to_string(I)));
  LinearExpr Small = LinearExpr::variable(Ids[0]).plusConstant(9);
  LinearExpr Big;
  for (int I = 0; I < 8; ++I)
    Big = Big + LinearExpr::variable(Ids[size_t(I)]).scaled(I + 1);

  LinearExpr CopyBig = Big;
  EXPECT_TRUE(CopyBig == Big);
  LinearExpr CopySmall = Small;
  EXPECT_TRUE(CopySmall == Small);

  // Cross-assign in both directions (heap -> inline, inline -> heap).
  CopyBig = Small;
  EXPECT_TRUE(CopyBig == Small);
  CopySmall = Big;
  EXPECT_TRUE(CopySmall == Big);

  LinearExpr MovedBig = std::move(CopySmall);
  EXPECT_TRUE(MovedBig == Big);
  LinearExpr MovedSmall = std::move(CopyBig);
  EXPECT_TRUE(MovedSmall == Small);
  // Self-consistency after move-assign.
  MovedBig = std::move(MovedSmall);
  EXPECT_TRUE(MovedBig == Small);
}

TEST(LinearExpr, EqualityAndHash) {
  LinearExpr A = LinearExpr::variable(X()).scaled(2).plusConstant(1);
  LinearExpr B =
      LinearExpr::variable(X()) + LinearExpr::variable(X()).plusConstant(1);
  EXPECT_TRUE(A == B);
  EXPECT_EQ(A.hash(), B.hash());
  EXPECT_FALSE(A == A.plusConstant(1));
}

} // namespace
