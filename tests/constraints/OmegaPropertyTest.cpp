//===- OmegaPropertyTest.cpp - Brute-force cross-validation ---------------===//
//
// Property test: on randomly generated *bounded* systems (every variable
// is constrained to a small box), the Omega test must agree exactly with
// exhaustive enumeration. Uses a deterministic LCG so failures are
// reproducible.
//
//===----------------------------------------------------------------------===//

#include "constraints/OmegaTest.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace mcsafe;

namespace {

/// Deterministic 64-bit LCG (Knuth constants).
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 33;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // Inclusive.
    return Lo + static_cast<int64_t>(next() %
                                     static_cast<uint64_t>(Hi - Lo + 1));
  }
};

constexpr int Box = 6; // Variables range over [-Box, Box].

struct RandomSystem {
  std::vector<Constraint> Constraints;
  /// The raw (kind, coeffs, constant, modulus) rows for brute-force
  /// evaluation, one per generated constraint.
  struct Row {
    ConstraintKind Kind;
    int64_t A, B; // Coefficients of x and y.
    int64_t C;    // Constant.
    int64_t Mod;  // For DIV/NDIV.
  };
  std::vector<Row> Rows;
};

RandomSystem makeSystem(Lcg &Rng, VarId X, VarId Y) {
  RandomSystem S;
  LinearExpr EX = LinearExpr::variable(X);
  LinearExpr EY = LinearExpr::variable(Y);
  // Box constraints keep enumeration complete.
  S.Constraints.push_back(Constraint::ge(EX.plusConstant(Box)));
  S.Constraints.push_back(Constraint::le(EX, LinearExpr::constant(Box)));
  S.Constraints.push_back(Constraint::ge(EY.plusConstant(Box)));
  S.Constraints.push_back(Constraint::le(EY, LinearExpr::constant(Box)));

  int N = static_cast<int>(Rng.range(1, 4));
  for (int I = 0; I < N; ++I) {
    RandomSystem::Row R;
    R.A = Rng.range(-3, 3);
    R.B = Rng.range(-3, 3);
    R.C = Rng.range(-8, 8);
    LinearExpr E =
        EX.scaled(R.A) + EY.scaled(R.B) + LinearExpr::constant(R.C);
    switch (Rng.range(0, 3)) {
    case 0:
      R.Kind = ConstraintKind::GE;
      S.Constraints.push_back(Constraint::ge(E));
      break;
    case 1:
      R.Kind = ConstraintKind::EQ;
      S.Constraints.push_back(Constraint::eq(E));
      break;
    case 2:
      R.Kind = ConstraintKind::DIV;
      R.Mod = Rng.range(2, 5);
      S.Constraints.push_back(Constraint::divides(R.Mod, E));
      break;
    default:
      R.Kind = ConstraintKind::NDIV;
      R.Mod = Rng.range(2, 5);
      S.Constraints.push_back(Constraint::notDivides(R.Mod, E));
      break;
    }
    S.Rows.push_back(R);
  }
  return S;
}

bool bruteForceSat(const RandomSystem &S) {
  for (int64_t X = -Box; X <= Box; ++X) {
    for (int64_t Y = -Box; Y <= Box; ++Y) {
      bool Ok = true;
      for (const RandomSystem::Row &R : S.Rows) {
        int64_t V = R.A * X + R.B * Y + R.C;
        switch (R.Kind) {
        case ConstraintKind::GE:
          Ok &= V >= 0;
          break;
        case ConstraintKind::EQ:
          Ok &= V == 0;
          break;
        case ConstraintKind::DIV:
          Ok &= ((V % R.Mod) + R.Mod) % R.Mod == 0;
          break;
        case ConstraintKind::NDIV:
          Ok &= ((V % R.Mod) + R.Mod) % R.Mod != 0;
          break;
        }
        if (!Ok)
          break;
      }
      if (Ok)
        return true;
    }
  }
  return false;
}

class OmegaAgainstBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(OmegaAgainstBruteForce, AgreesOnBoundedSystems) {
  Lcg Rng(0x9E3779B9u + static_cast<uint64_t>(GetParam()) * 7919u);
  VarId X = varId("op.x" + std::to_string(GetParam()));
  VarId Y = varId("op.y" + std::to_string(GetParam()));
  // 40 random systems per seed.
  for (int Iter = 0; Iter < 40; ++Iter) {
    RandomSystem S = makeSystem(Rng, X, Y);
    bool Expected = bruteForceSat(S);
    OmegaTest Omega;
    SatResult Got = Omega.isSatisfiable(S.Constraints);
    ASSERT_NE(Got, SatResult::Unknown)
        << "seed " << GetParam() << " iter " << Iter;
    EXPECT_EQ(Got == SatResult::Sat, Expected)
        << "seed " << GetParam() << " iter " << Iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, OmegaAgainstBruteForce,
                         ::testing::Range(0, 12));

} // namespace
