//===- OmegaTestTest.cpp --------------------------------------------------===//

#include "constraints/OmegaTest.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

LinearExpr x() { return LinearExpr::variable(varId("ox")); }
LinearExpr y() { return LinearExpr::variable(varId("oy")); }
LinearExpr z() { return LinearExpr::variable(varId("oz")); }

TEST(OmegaTest, EmptySystemIsSat) {
  OmegaTest Omega;
  EXPECT_EQ(Omega.isSatisfiable({}), SatResult::Sat);
}

TEST(OmegaTest, ConstantContradiction) {
  OmegaTest Omega;
  EXPECT_EQ(Omega.isSatisfiable({Constraint::ge(LinearExpr::constant(-1))}),
            SatResult::Unsat);
  EXPECT_EQ(Omega.isSatisfiable({Constraint::ge(LinearExpr::constant(0))}),
            SatResult::Sat);
}

TEST(OmegaTest, SimpleInterval) {
  OmegaTest Omega;
  // 0 <= x <= 10: sat.
  EXPECT_EQ(Omega.isSatisfiable({Constraint::ge(x()),
                                 Constraint::le(x(), LinearExpr::constant(10))}),
            SatResult::Sat);
  // x >= 5 and x <= 4: unsat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::ge(x().plusConstant(-5)),
                 Constraint::le(x(), LinearExpr::constant(4))}),
            SatResult::Unsat);
  // x >= 5 and x <= 5: sat (point).
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::ge(x().plusConstant(-5)),
                 Constraint::le(x(), LinearExpr::constant(5))}),
            SatResult::Sat);
}

TEST(OmegaTest, TwoVariableChain) {
  OmegaTest Omega;
  // x < y, y < x: unsat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::lt(x(), y()), Constraint::lt(y(), x())}),
            SatResult::Unsat);
  // x < y, y < z, z < x: unsat (cycle).
  EXPECT_EQ(Omega.isSatisfiable({Constraint::lt(x(), y()),
                                 Constraint::lt(y(), z()),
                                 Constraint::lt(z(), x())}),
            SatResult::Unsat);
  // x < y, y < z: sat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::lt(x(), y()), Constraint::lt(y(), z())}),
            SatResult::Sat);
}

TEST(OmegaTest, EqualityDirectSolve) {
  OmegaTest Omega;
  // x == y + 3, x <= 2, y >= 0: unsat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::eq(x() - y().plusConstant(3)),
                 Constraint::le(x(), LinearExpr::constant(2)),
                 Constraint::ge(y())}),
            SatResult::Unsat);
  // x == y + 3, x <= 3, y >= 0: sat (y = 0, x = 3).
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::eq(x() - y().plusConstant(3)),
                 Constraint::le(x(), LinearExpr::constant(3)),
                 Constraint::ge(y())}),
            SatResult::Sat);
}

TEST(OmegaTest, EqualityGcdTest) {
  OmegaTest Omega;
  // 2x + 4y == 1: no integer solution (gcd 2 does not divide 1).
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::eq(x().scaled(2) + y().scaled(4) -
                                LinearExpr::constant(1))}),
            SatResult::Unsat);
  // 2x + 4y == 6: sat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::eq(x().scaled(2) + y().scaled(4) -
                                LinearExpr::constant(6))}),
            SatResult::Sat);
}

TEST(OmegaTest, NonUnitEqualityPughReduction) {
  OmegaTest Omega;
  // 7x + 12y == 17, 0 <= x <= 10, 0 <= y <= 10.
  // Integer solutions of 7x + 12y = 17: x = 12k + 11, y = -7k - 4... the
  // smallest nonnegative x is x = 11 with y = -5 < 0; within the box there
  // is none -> unsat.
  std::vector<Constraint> System = {
      Constraint::eq(x().scaled(7) + y().scaled(12) -
                     LinearExpr::constant(17)),
      Constraint::ge(x()), Constraint::le(x(), LinearExpr::constant(10)),
      Constraint::ge(y()), Constraint::le(y(), LinearExpr::constant(10))};
  EXPECT_EQ(Omega.isSatisfiable(System), SatResult::Unsat);

  // 7x + 12y == 26 has (x, y) = (2, 1) -> sat.
  System[0] = Constraint::eq(x().scaled(7) + y().scaled(12) -
                             LinearExpr::constant(26));
  EXPECT_EQ(Omega.isSatisfiable(System), SatResult::Sat);
}

TEST(OmegaTest, DarkShadowInexactCase) {
  OmegaTest Omega;
  // Pugh's classic example: 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4
  // has rational but no integer solutions.
  std::vector<Constraint> System = {
      Constraint::ge(x().scaled(11) + y().scaled(13) -
                     LinearExpr::constant(27)),
      Constraint::le(x().scaled(11) + y().scaled(13),
                     LinearExpr::constant(45)),
      Constraint::ge(x().scaled(7) - y().scaled(9) +
                     LinearExpr::constant(10)),
      Constraint::le(x().scaled(7) - y().scaled(9),
                     LinearExpr::constant(4))};
  EXPECT_EQ(Omega.isSatisfiable(System), SatResult::Unsat);
}

TEST(OmegaTest, DarkShadowSatCase) {
  OmegaTest Omega;
  // 2x >= 1 and 2x <= 9 has integer solutions (x in 1..4).
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::ge(x().scaled(2).plusConstant(-1)),
                 Constraint::le(x().scaled(2), LinearExpr::constant(9))}),
            SatResult::Sat);
}

TEST(OmegaTest, TightEvenPointUnsat) {
  OmegaTest Omega;
  // 2x == 5: unsat via gcd.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::eq(x().scaled(2).plusConstant(-5))}),
            SatResult::Unsat);
}

TEST(OmegaTest, DivisibilitySat) {
  OmegaTest Omega;
  // 4 | x, 1 <= x <= 7  ->  x == 4.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::divides(4, x()),
                 Constraint::ge(x().plusConstant(-1)),
                 Constraint::le(x(), LinearExpr::constant(7))}),
            SatResult::Sat);
  // 4 | x, 5 <= x <= 7: unsat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::divides(4, x()),
                 Constraint::ge(x().plusConstant(-5)),
                 Constraint::le(x(), LinearExpr::constant(7))}),
            SatResult::Unsat);
}

TEST(OmegaTest, DivisibilityCombination) {
  OmegaTest Omega;
  // 4 | x and 6 | x and 1 <= x <= 11: unsat (lcm is 12).
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::divides(4, x()), Constraint::divides(6, x()),
                 Constraint::ge(x().plusConstant(-1)),
                 Constraint::le(x(), LinearExpr::constant(11))}),
            SatResult::Unsat);
  // ... but 1 <= x <= 12 gives x = 12.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::divides(4, x()), Constraint::divides(6, x()),
                 Constraint::ge(x().plusConstant(-1)),
                 Constraint::le(x(), LinearExpr::constant(12))}),
            SatResult::Sat);
}

TEST(OmegaTest, NotDividesResidues) {
  OmegaTest Omega;
  // not(2 | x) and x == 4: unsat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::notDivides(2, x()),
                 Constraint::eq(x().plusConstant(-4))}),
            SatResult::Unsat);
  // not(2 | x) and x == 5: sat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::notDivides(2, x()),
                 Constraint::eq(x().plusConstant(-5))}),
            SatResult::Sat);
  // not(4 | x) and 4 | x: unsat.
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::notDivides(4, x()), Constraint::divides(4, x())}),
            SatResult::Unsat);
}

TEST(OmegaTest, ArrayBoundsShape) {
  OmegaTest Omega;
  VarId G3 = varId("omega.%g3");
  VarId G2 = varId("omega.%g2");
  VarId N = varId("omega.n");
  LinearExpr EG3 = LinearExpr::variable(G3);
  LinearExpr EG2 = LinearExpr::variable(G2);
  LinearExpr EN = LinearExpr::variable(N);
  // Context: g3 >= 0, g3 < n, g2 == 4*g3. Negated goal: g2 >= 4n.
  // Unsat -> the bounds check holds.
  EXPECT_EQ(Omega.isSatisfiable({Constraint::ge(EG3),
                                 Constraint::lt(EG3, EN),
                                 Constraint::eq(EG2 - EG3.scaled(4)),
                                 Constraint::ge(EG2 - EN.scaled(4))}),
            SatResult::Unsat);
  // Negated lower bound: g2 <= -1: also unsat.
  EXPECT_EQ(Omega.isSatisfiable({Constraint::ge(EG3),
                                 Constraint::lt(EG3, EN),
                                 Constraint::eq(EG2 - EG3.scaled(4)),
                                 Constraint::le(EG2, LinearExpr::constant(-1))}),
            SatResult::Unsat);
  // Without g3 < n the upper bound fails (sat counterexample exists).
  EXPECT_EQ(Omega.isSatisfiable({Constraint::ge(EG3),
                                 Constraint::eq(EG2 - EG3.scaled(4)),
                                 Constraint::ge(EG2 - EN.scaled(4))}),
            SatResult::Sat);
}

TEST(OmegaTest, UnboundedVariableDropped) {
  OmegaTest Omega;
  // y unconstrained above: x <= y with x >= 100 is sat.
  EXPECT_EQ(Omega.isSatisfiable({Constraint::le(x(), y()),
                                 Constraint::ge(x().plusConstant(-100))}),
            SatResult::Sat);
}

TEST(OmegaTest, PoisonGivesUnknown) {
  OmegaTest Omega;
  EXPECT_EQ(Omega.isSatisfiable(
                {Constraint::ge(LinearExpr::poisoned())}),
            SatResult::Unknown);
}

TEST(OmegaTest, BudgetGivesUnknownNotWrongAnswer) {
  OmegaTest::Options Opts;
  Opts.MaxSteps = 1;
  OmegaTest Omega(Opts);
  // A system that needs real work.
  std::vector<Constraint> System = {
      Constraint::ge(x().scaled(11) + y().scaled(13) -
                     LinearExpr::constant(27)),
      Constraint::le(x().scaled(11) + y().scaled(13),
                     LinearExpr::constant(45)),
      Constraint::ge(x().scaled(7) - y().scaled(9) +
                     LinearExpr::constant(10)),
      Constraint::le(x().scaled(7) - y().scaled(9),
                     LinearExpr::constant(4))};
  EXPECT_EQ(Omega.isSatisfiable(System), SatResult::Unknown);
}

TEST(OmegaTest, StatsAccumulate) {
  OmegaTest Omega;
  Omega.isSatisfiable({Constraint::lt(x(), y()), Constraint::lt(y(), x())});
  EXPECT_GE(Omega.stats().Calls, 1u);
  Omega.resetStats();
  EXPECT_EQ(Omega.stats().Calls, 0u);
}

/// Property sweep: the interval [lo, hi] intersected with stride
/// constraints x == k (mod 4) is satisfiable iff some multiple of 4 plus k
/// lies in the interval.
class DivIntervalProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(DivIntervalProperty, MatchesBruteForce) {
  auto [Lo, Hi, K] = GetParam();
  OmegaTest Omega;
  SatResult R = Omega.isSatisfiable(
      {Constraint::divides(4, x().plusConstant(-K)),
       Constraint::ge(x().plusConstant(-Lo)),
       Constraint::le(x(), LinearExpr::constant(Hi))});
  bool Expected = false;
  for (int V = Lo; V <= Hi; ++V)
    if (((V - K) % 4 + 4) % 4 == 0)
      Expected = true;
  EXPECT_EQ(R, Expected ? SatResult::Sat : SatResult::Unsat)
      << "lo=" << Lo << " hi=" << Hi << " k=" << K;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DivIntervalProperty,
    ::testing::Combine(::testing::Values(0, 1, 5), ::testing::Values(2, 3, 9),
                       ::testing::Values(0, 1, 2, 3)));

} // namespace
