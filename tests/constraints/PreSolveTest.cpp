//===- PreSolveTest.cpp - Tiered solving: exactness + differential fuzz ---===//

#include "constraints/PreSolve.h"
#include "constraints/Prover.h"

#include <gtest/gtest.h>

#include <random>
#include <vector>

using namespace mcsafe;

namespace {

LinearExpr var(const char *Name) { return LinearExpr::variable(varId(Name)); }

SatResult solveTiered(const std::vector<Constraint> &C,
                      TieredSolver::TierStats *StatsOut = nullptr) {
  TieredSolver S;
  SatResult R = S.isSatisfiable(C);
  if (StatsOut)
    *StatsOut = S.tierStats();
  return R;
}

//===----------------------------------------------------------------------===//
// Interval tier exactness.
//===----------------------------------------------------------------------===//

TEST(PreSolve, IntervalDecidesSingleVariableBounds) {
  // 0 <= x <= 10: sat, and the interval tier (not Omega) answers.
  TieredSolver::TierStats St;
  EXPECT_EQ(solveTiered({Constraint::ge(var("ps.x")),
                         Constraint::le(var("ps.x"), LinearExpr::constant(10))},
                        &St),
            SatResult::Sat);
  EXPECT_EQ(St.IntervalHits, 1u);
  EXPECT_EQ(St.OmegaHits + St.OmegaMisses, 0u);

  // x >= 5 && x <= 4: empty interval.
  EXPECT_EQ(
      solveTiered({Constraint::ge(var("ps.x").plusConstant(-5)),
                   Constraint::le(var("ps.x"), LinearExpr::constant(4))}),
      SatResult::Unsat);
}

TEST(PreSolve, IntervalHandlesScaledCoefficients) {
  // 3x >= 7  =>  x >= 3 (ceil);  3x <= 8  =>  x <= 2 (floor): unsat.
  EXPECT_EQ(solveTiered(
                {Constraint::ge(var("ps.x").scaled(3).plusConstant(-7)),
                 Constraint::le(var("ps.x").scaled(3), LinearExpr::constant(8))}),
            SatResult::Unsat);
  // But 3x >= 6 && 3x <= 8 has x = 2.
  EXPECT_EQ(solveTiered(
                {Constraint::ge(var("ps.x").scaled(3).plusConstant(-6)),
                 Constraint::le(var("ps.x").scaled(3), LinearExpr::constant(8))}),
            SatResult::Sat);
}

TEST(PreSolve, IntervalEqualityPinsAndChecksDivisibility) {
  // 2x = 5 has no integer solution.
  EXPECT_EQ(solveTiered({Constraint::eq(
                var("ps.x").scaled(2).plusConstant(-5))}),
            SatResult::Unsat);
  // 2x = 6 pins x = 3; 3 >= 4 fails.
  EXPECT_EQ(solveTiered({Constraint::eq(var("ps.x").scaled(2).plusConstant(-6)),
                         Constraint::ge(var("ps.x").plusConstant(-4))}),
            SatResult::Unsat);
}

TEST(PreSolve, IntervalCongruenceWindowScan) {
  // x in [1, 3] with 4 | x: no multiple of 4 in the window.
  EXPECT_EQ(solveTiered({Constraint::ge(var("ps.x").plusConstant(-1)),
                         Constraint::le(var("ps.x"), LinearExpr::constant(3)),
                         Constraint::divides(4, var("ps.x"))}),
            SatResult::Unsat);
  // x in [1, 4] with 4 | x: x = 4.
  EXPECT_EQ(solveTiered({Constraint::ge(var("ps.x").plusConstant(-1)),
                         Constraint::le(var("ps.x"), LinearExpr::constant(4)),
                         Constraint::divides(4, var("ps.x"))}),
            SatResult::Sat);
  // Two congruences: x ≡ 0 (mod 4) and x ≡ 0 (mod 6) => 12 | x.
  EXPECT_EQ(solveTiered({Constraint::ge(var("ps.x").plusConstant(-1)),
                         Constraint::le(var("ps.x"), LinearExpr::constant(11)),
                         Constraint::divides(4, var("ps.x")),
                         Constraint::divides(6, var("ps.x"))}),
            SatResult::Unsat);
  // Unbounded-below but bounded-above: the Hi-anchored window still
  // decides (every residue appears within one period of the top end).
  EXPECT_EQ(solveTiered({Constraint::le(var("ps.x"), LinearExpr::constant(100)),
                         Constraint::divides(7, var("ps.x").plusConstant(-3))}),
            SatResult::Sat);
  // NDIV inside a window: x in [4, 4], 4 | x, so x != 4 via NDIV(4) fails.
  EXPECT_EQ(solveTiered({Constraint::eq(var("ps.x").plusConstant(-4)),
                         Constraint::notDivides(4, var("ps.x"))}),
            SatResult::Unsat);
}

//===----------------------------------------------------------------------===//
// Congruence tier exactness.
//===----------------------------------------------------------------------===//

TEST(PreSolve, CongruenceRefutesEqualityAgainstNotDivides) {
  // x = 4 with "not 4 | x": the congruence tier substitutes the pinned
  // value into the NDIV atom and sees an identically-false residue —
  // before the interval tier even runs.
  TieredSolver::TierStats St;
  EXPECT_EQ(solveTiered({Constraint::eq(var("ps.cg_x").plusConstant(-4)),
                         Constraint::notDivides(4, var("ps.cg_x"))},
                        &St),
            SatResult::Unsat);
  EXPECT_EQ(St.CongruenceHits, 1u);
  EXPECT_EQ(St.IntervalHits, 0u);
  EXPECT_EQ(St.OmegaHits + St.OmegaMisses, 0u);
}

TEST(PreSolve, CongruenceCombinesDivisibilityOfSum) {
  // 4 | b and 4 | i force 4 | (b + i): the misaligned-sum refutation the
  // annotation phase produces for a masked base plus masked offset.
  TieredSolver::TierStats St;
  EXPECT_EQ(
      solveTiered({Constraint::divides(4, var("ps.cg_b")),
                   Constraint::divides(4, var("ps.cg_i")),
                   Constraint::notDivides(4,
                                          var("ps.cg_b") + var("ps.cg_i"))},
                  &St),
      SatResult::Unsat);
  EXPECT_EQ(St.CongruenceHits, 1u);
  EXPECT_EQ(St.OmegaHits + St.OmegaMisses, 0u);
}

TEST(PreSolve, CongruenceProvesTautologicalNotDivides) {
  // 4 | x makes x even, so "not 2 | (x + 1)" holds identically; with no
  // inequalities in sight the tier answers Sat on its own.
  TieredSolver::TierStats St;
  EXPECT_EQ(
      solveTiered({Constraint::divides(4, var("ps.cg_x")),
                   Constraint::notDivides(2,
                                          var("ps.cg_x").plusConstant(1))},
                  &St),
      SatResult::Sat);
  EXPECT_EQ(St.CongruenceHits, 1u);
  EXPECT_EQ(St.OmegaHits + St.OmegaMisses, 0u);
}

TEST(PreSolve, CongruenceRefutesUnderInequalities) {
  // Inequalities forbid a Sat answer from the congruence tier but not an
  // Unsat one: x >= 0, x = 2, 4 | x is modularly impossible.
  TieredSolver::TierStats St;
  EXPECT_EQ(solveTiered({Constraint::ge(var("ps.cg_x")),
                         Constraint::eq(var("ps.cg_x").plusConstant(-2)),
                         Constraint::divides(4, var("ps.cg_x"))},
                        &St),
            SatResult::Unsat);
  EXPECT_EQ(St.CongruenceHits, 1u);

  // ...while the satisfiable variant falls through to the interval tier.
  EXPECT_EQ(solveTiered({Constraint::ge(var("ps.cg_x")),
                         Constraint::divides(4, var("ps.cg_x"))},
                        &St),
            SatResult::Sat);
  EXPECT_EQ(St.CongruenceHits, 0u);
  EXPECT_EQ(St.CongruenceMisses, 1u);
  EXPECT_EQ(St.IntervalHits, 1u);
}

TEST(PreSolve, CongruenceDeclinesWhenDensityReachesOne) {
  // "not 2 | x" and "not 2 | (x + 1)" cover both residues mod 2 — the
  // union bound cannot witness a solution, so the tier declines and a
  // later tier must answer (the system is in fact unsatisfiable).
  TieredSolver::TierStats St;
  EXPECT_EQ(
      solveTiered({Constraint::notDivides(2, var("ps.cg_x")),
                   Constraint::notDivides(2,
                                          var("ps.cg_x").plusConstant(1))},
                  &St),
      SatResult::Unsat);
  EXPECT_EQ(St.CongruenceHits, 0u);
  EXPECT_EQ(St.CongruenceMisses, 1u);
}

TEST(PreSolve, CongruenceTierCanBeDisabled) {
  TieredSolver::Options Opts;
  Opts.EnableCongruence = false;
  TieredSolver S(Opts);
  EXPECT_EQ(
      S.isSatisfiable({Constraint::eq(var("ps.cg_x").plusConstant(-4)),
                       Constraint::notDivides(4, var("ps.cg_x"))}),
      SatResult::Unsat);
  EXPECT_EQ(S.tierStats().CongruenceHits + S.tierStats().CongruenceMisses,
            0u);
}

//===----------------------------------------------------------------------===//
// Difference-bound tier exactness.
//===----------------------------------------------------------------------===//

TEST(PreSolve, DbmDetectsNegativeCycle) {
  // x - y >= 1, y - z >= 1, z - x >= -1  =>  summing: 0 >= 1. Unsat.
  TieredSolver::TierStats St;
  EXPECT_EQ(
      solveTiered({Constraint::ge(var("ps.dx") - var("ps.dy") -
                                  LinearExpr::constant(1)),
                   Constraint::ge(var("ps.dy") - var("ps.dz") -
                                  LinearExpr::constant(1)),
                   Constraint::ge(var("ps.dz") - var("ps.dx") +
                                  LinearExpr::constant(1))},
                  &St),
      SatResult::Unsat);
  EXPECT_EQ(St.DbmHits, 1u);
  EXPECT_EQ(St.OmegaHits + St.OmegaMisses, 0u);
}

TEST(PreSolve, DbmAcceptsConsistentChain) {
  // x >= y >= z, x <= z + 5: satisfiable.
  EXPECT_EQ(solveTiered({Constraint::ge(var("ps.dx") - var("ps.dy")),
                         Constraint::ge(var("ps.dy") - var("ps.dz")),
                         Constraint::ge(var("ps.dz") - var("ps.dx") +
                                        LinearExpr::constant(5))}),
            SatResult::Sat);
}

TEST(PreSolve, DbmHandlesEqualityAndSingleVariableMix) {
  // x - y = 3 with x - y >= 4 contradicts.
  EXPECT_EQ(solveTiered({Constraint::eq(var("ps.dx") - var("ps.dy") -
                                        LinearExpr::constant(3)),
                         Constraint::ge(var("ps.dx") - var("ps.dy") -
                                        LinearExpr::constant(4))}),
            SatResult::Unsat);
  // Mixed single-variable bound: x >= 0, y - x >= 0, -y - 1 >= 0 (y <= -1).
  EXPECT_EQ(solveTiered({Constraint::ge(var("ps.dx")),
                         Constraint::ge(var("ps.dy") - var("ps.dx")),
                         Constraint::ge((-var("ps.dy")).plusConstant(-1))}),
            SatResult::Unsat);
}

TEST(PreSolve, NonTierShapesFallThroughToOmega) {
  // Pugh's 2-variable dense system: neither tier applies, Omega decides.
  LinearExpr X = var("ps.px"), Y = var("ps.py");
  TieredSolver::TierStats St;
  EXPECT_EQ(
      solveTiered(
          {Constraint::ge(X.scaled(11) + Y.scaled(13) -
                          LinearExpr::constant(27)),
           Constraint::le(X.scaled(11) + Y.scaled(13),
                          LinearExpr::constant(45)),
           Constraint::ge(X.scaled(7) - Y.scaled(9) + LinearExpr::constant(10)),
           Constraint::le(X.scaled(7) - Y.scaled(9), LinearExpr::constant(4))},
          &St),
      SatResult::Unsat);
  EXPECT_EQ(St.IntervalMisses, 1u);
  EXPECT_EQ(St.DbmMisses, 1u);
  EXPECT_EQ(St.OmegaHits, 1u);
}

TEST(PreSolve, DisabledTiersMatchReference) {
  TieredSolver::Options Opts;
  Opts.EnableTiers = false;
  TieredSolver S(Opts);
  EXPECT_EQ(S.isSatisfiable({Constraint::ge(var("ps.x")),
                             Constraint::le(var("ps.x"),
                                            LinearExpr::constant(10))}),
            SatResult::Sat);
  EXPECT_EQ(S.tierStats().IntervalHits + S.tierStats().DbmHits, 0u);
  EXPECT_EQ(S.tierStats().OmegaHits, 1u);
}

//===----------------------------------------------------------------------===//
// Differential fuzzing: the tiered pipeline against the raw Omega test.
//
// The generator is biased toward the pre-solver shapes (single-variable
// bounds, unit differences, divisibility) with a tail of dense systems,
// so every tier and every decline path is exercised. Soundness bar: the
// tiered solver and the reference may differ only when one of them says
// Unknown — a definitive Sat must never meet a definitive Unsat.
//===----------------------------------------------------------------------===//

struct FuzzGen {
  std::mt19937_64 Rng{0xC5AFE5EEDULL}; // Fixed seed: reproducible stream.
  std::vector<VarId> Vars;

  FuzzGen() {
    for (int I = 0; I < 4; ++I)
      Vars.push_back(varId("ps.fz" + std::to_string(I)));
  }

  int64_t smallInt(int64_t Lo, int64_t Hi) {
    return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
  }

  LinearExpr randomExpr(int MaxVars, int64_t CoeffRange) {
    int N = int(smallInt(0, MaxVars));
    LinearExpr E = LinearExpr::constant(smallInt(-10, 10));
    for (int I = 0; I < N; ++I) {
      int64_t C = smallInt(-CoeffRange, CoeffRange);
      if (C == 0)
        C = 1;
      E = E + LinearExpr::variable(Vars[size_t(smallInt(0, 3))]).scaled(C);
    }
    return E;
  }

  Constraint randomConstraint() {
    switch (smallInt(0, 9)) {
    case 0: // Single-variable bound (interval shape).
    case 1:
      return Constraint::ge(
          LinearExpr::variable(Vars[size_t(smallInt(0, 3))])
              .scaled(smallInt(1, 3))
              .plusConstant(smallInt(-8, 8)));
    case 2: // Unit difference (DBM shape).
    case 3:
      return Constraint::ge(LinearExpr::variable(Vars[size_t(smallInt(0, 3))]) -
                            LinearExpr::variable(Vars[size_t(smallInt(0, 3))]) +
                            LinearExpr::constant(smallInt(-4, 4)));
    case 4: // Equality.
      return Constraint::eq(randomExpr(2, 2));
    case 5: // Divisibility.
      return Constraint::divides(smallInt(2, 8), randomExpr(1, 1));
    case 6:
      return Constraint::notDivides(smallInt(2, 8), randomExpr(1, 1));
    default: // Dense (Omega shape).
      return Constraint::ge(randomExpr(3, 5));
    }
  }

  std::vector<Constraint> randomSystem() {
    std::vector<Constraint> Out;
    int N = int(smallInt(1, 5));
    for (int I = 0; I < N; ++I)
      Out.push_back(randomConstraint());
    return Out;
  }
};

TEST(PreSolve, DifferentialFuzzAgainstOmega) {
  FuzzGen Gen;
  TieredSolver Tiered;
  OmegaTest Reference;
  int Definitive = 0, IntervalAnswered = 0, DbmAnswered = 0;
  for (int I = 0; I < 10000; ++I) {
    std::vector<Constraint> Sys = Gen.randomSystem();
    SatResult T = Tiered.isSatisfiable(Sys);
    SatResult R = Reference.isSatisfiable(Sys);
    if (T != SatResult::Unknown && R != SatResult::Unknown) {
      ASSERT_EQ(T, R) << "divergence on system " << I;
      ++Definitive;
    } else {
      // One side said Unknown; soundness still forbids the pair
      // (Sat, Unsat) in either order, which the branch above covers.
      SUCCEED();
    }
  }
  IntervalAnswered = int(Tiered.tierStats().IntervalHits);
  DbmAnswered = int(Tiered.tierStats().DbmHits);
  // The generator must actually exercise every tier, or this test is
  // vacuous; these floors are far below the observed rates.
  EXPECT_GT(Definitive, 9000);
  EXPECT_GT(IntervalAnswered, 500);
  EXPECT_GT(DbmAnswered, 500);
  EXPECT_GT(int(Tiered.tierStats().OmegaHits), 500);
}

TEST(PreSolve, FuzzTiersOnVsOffAgree) {
  // The same stream through two TieredSolver configurations: tiers
  // enabled vs Omega-only. Definitive answers must coincide.
  FuzzGen Gen;
  TieredSolver On;
  TieredSolver::Options OffOpts;
  OffOpts.EnableTiers = false;
  TieredSolver Off(OffOpts);
  for (int I = 0; I < 2000; ++I) {
    std::vector<Constraint> Sys = Gen.randomSystem();
    SatResult A = On.isSatisfiable(Sys);
    SatResult B = Off.isSatisfiable(Sys);
    if (A != SatResult::Unknown && B != SatResult::Unknown)
      ASSERT_EQ(A, B) << "config divergence on system " << I;
  }
}

TEST(PreSolve, ProverVerdictsUnchangedByTiers) {
  // End-to-end: a validity query through the Prover with tiers on and
  // off. (Cache entries cannot leak between the two configurations —
  // QueryBudget::SolverTiers keys them apart.)
  FormulaRef Context = Formula::conj(
      {Formula::atom(Constraint::ge(var("ps.pv_i"))),
       Formula::atom(Constraint::lt(var("ps.pv_i"), var("ps.pv_n"))),
       Formula::atom(Constraint::eq(var("ps.pv_a") -
                                    var("ps.pv_i").scaled(4)))});
  FormulaRef Goal = Formula::conj(
      {Formula::atom(Constraint::ge(var("ps.pv_a"))),
       Formula::atom(Constraint::lt(var("ps.pv_a"),
                                    var("ps.pv_n").scaled(4)))});
  Prover::Options OnOpts;
  Prover::Options OffOpts;
  OffOpts.EnableTiers = false;
  Prover On(OnOpts), Off(OffOpts);
  EXPECT_EQ(On.checkImplies(Context, Goal), Off.checkImplies(Context, Goal));
  EXPECT_EQ(On.checkValid(Formula::mkTrue()), Off.checkValid(Formula::mkTrue()));
  FormulaRef NotValid = Formula::atom(Constraint::ge(var("ps.pv_i")));
  EXPECT_EQ(On.checkValid(NotValid), Off.checkValid(NotValid));
}

} // namespace
