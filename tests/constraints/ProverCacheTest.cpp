//===- ProverCacheTest.cpp ------------------------------------------------===//
//
// The shared formula-result cache: budget keying (a budget-limited
// Unknown must never answer a larger-budget query), bounded capacity
// with eviction accounting, hash-collision discrimination through
// Formula::equal, and ApproximatedForall surviving cache hits.
//
//===----------------------------------------------------------------------===//

#include "constraints/Prover.h"
#include "constraints/ProverCache.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

LinearExpr var(const char *Name) {
  return LinearExpr::variable(varId(Name));
}

FormulaRef ge(LinearExpr E) {
  return Formula::atom(Constraint::ge(std::move(E)));
}

/// A satisfiable formula whose DNF has 16 disjuncts: conj of four
/// two-way disjunctions.
FormulaRef wideFormula() {
  std::vector<FormulaRef> Conj;
  const char *Names[] = {"pc.a", "pc.b", "pc.c", "pc.d"};
  for (const char *N : Names)
    Conj.push_back(
        Formula::disj2(ge(var(N)), ge((-var(N)).plusConstant(-1))));
  return Formula::conj(Conj);
}

// The satellite-1 regression: an Unknown cached under a small DNF budget
// used to be served (keyed on the formula alone) to queries running
// under a larger budget, masking a definite answer. Budgets are part of
// the key now.
TEST(ProverCache, BudgetLimitedUnknownNotReusedUnderLargerBudget) {
  Prover::Options SmallOpts;
  SmallOpts.DnfMaxDisjuncts = 2; // Exceeded by wideFormula()'s 16.
  Prover Small(SmallOpts);
  ASSERT_NE(Small.cacheHandle(), nullptr);

  FormulaRef F = wideFormula();
  EXPECT_EQ(Small.checkSat(F), SatResult::Unknown);

  // Same cache, default (ample) budget: must get the definite answer,
  // not the cached small-budget Unknown.
  Prover Big(Prover::Options(), Small.cacheHandle());
  EXPECT_EQ(Big.checkSat(F), SatResult::Sat);

  // And the small-budget prover still sees its own Unknown — as a hit.
  uint64_t HitsBefore = Small.stats().CacheHits;
  EXPECT_EQ(Small.checkSat(F), SatResult::Unknown);
  EXPECT_GT(Small.stats().CacheHits, HitsBefore);
}

TEST(ProverCache, SharedCacheServesSecondProver) {
  Prover P1;
  FormulaRef F = Formula::implies(ge(var("pc.x").plusConstant(-5)),
                                  ge(var("pc.x").plusConstant(-3)));
  EXPECT_EQ(P1.checkValid(F), ProverResult::Proved);

  Prover P2(Prover::Options(), P1.cacheHandle());
  EXPECT_EQ(P2.checkValid(F), ProverResult::Proved);
  EXPECT_GT(P2.stats().CacheHits, 0u);
}

// The satellite-3 regression: a Sat outcome recorded under a Forall
// approximation is a possibly spurious countermodel. Before the flag was
// cached alongside the result, the first query correctly answered
// Unknown but a repeat — served from cache — hardened into NotProved.
TEST(ProverCache, ApproximatedForallSurvivesCacheHit) {
  Prover P;
  // x == 8 implies exists q. x == 4q. Refuting the negation needs a
  // Forall the sat check approximates, so the honest answer is Unknown.
  VarId Q = varId("pc.q");
  FormulaRef Hyp =
      Formula::atom(Constraint::eq(var("pc.x").plusConstant(-8)));
  FormulaRef Goal = Formula::exists(
      Q, Formula::atom(Constraint::eq(
             var("pc.x") - LinearExpr::variable(Q).scaled(4))));
  FormulaRef F = Formula::implies(Hyp, Goal);

  ProverResult First = P.checkValid(F);
  ASSERT_NE(First, ProverResult::NotProved);
  uint64_t HitsBefore = P.stats().CacheHits;
  ProverResult Second = P.checkValid(F);
  EXPECT_GT(P.stats().CacheHits, HitsBefore); // Served from cache...
  EXPECT_EQ(Second, First);                   // ...without hardening.
}

// The satellite-2 behavior: the cache is bounded and evictions are
// observable through the prover's counters.
TEST(ProverCache, BoundedCacheEvictsAndCounts) {
  Prover::Options Opts;
  Opts.CacheMaxEntries = 16;
  Prover P(Opts);
  for (int C = 0; C < 400; ++C)
    P.checkSat(ge(var("pc.e").plusConstant(-C)));
  EXPECT_GT(P.stats().CacheEvictions, 0u);
}

// Eviction-dedupe regression: evictions are a property of the cache, so
// a prover attached to a SHARED cache must report 0 — otherwise a batch
// summary over N workers counts every eviction N times. The cache-global
// number stays available from ProverCache::stats() itself.
TEST(ProverCache, SharedCacheEvictionsNotDoubleCounted) {
  ProverCache::Config C;
  C.MaxEntries = 16;
  C.Shards = 1;
  auto Shared = std::make_shared<ProverCache>(C);

  Prover::Options Opts;
  Prover P1(Opts, Shared);
  Prover P2(Opts, Shared);
  for (int I = 0; I < 200; ++I) {
    P1.checkSat(ge(var("pc.s1").plusConstant(-I)));
    P2.checkSat(ge(var("pc.s2").plusConstant(-I)));
  }
  ASSERT_GT(Shared->stats().Evictions, 0u); // The cache did evict...
  EXPECT_EQ(P1.stats().CacheEvictions, 0u); // ...but no sharer owns them:
  EXPECT_EQ(P2.stats().CacheEvictions, 0u);
  // summing per-worker stats plus one cache-level read counts each
  // eviction exactly once.
  uint64_t BatchTotal = P1.stats().CacheEvictions +
                        P2.stats().CacheEvictions +
                        Shared->stats().Evictions;
  EXPECT_EQ(BatchTotal, Shared->stats().Evictions);
}

TEST(ProverCache, BudgetExhaustionsCounted) {
  Prover::Options SmallOpts;
  SmallOpts.DnfMaxDisjuncts = 2; // Exceeded by wideFormula()'s 16.
  Prover P(SmallOpts);
  FormulaRef F = wideFormula();
  EXPECT_EQ(P.checkSat(F), SatResult::Unknown);
  EXPECT_EQ(P.stats().BudgetExhaustions, 1u);
  // A cache hit replays the Unknown without a fresh exhaustion.
  EXPECT_EQ(P.checkSat(F), SatResult::Unknown);
  EXPECT_EQ(P.stats().BudgetExhaustions, 1u);
  // An ample budget never exhausts.
  Prover Big;
  EXPECT_EQ(Big.checkSat(F), SatResult::Sat);
  EXPECT_EQ(Big.stats().BudgetExhaustions, 0u);
}

TEST(ProverCache, CapacityBoundHolds) {
  ProverCache::Config C;
  C.MaxEntries = 64;
  C.Shards = 1;
  ProverCache Cache(C);
  QueryBudget B;
  for (int I = 0; I < 500; ++I) {
    FormulaRef F = ge(var("pc.cap").plusConstant(-I));
    Cache.insert(F, B, SatOutcome{SatResult::Sat, false});
  }
  ProverCache::Stats S = Cache.stats();
  EXPECT_EQ(S.Insertions, 500u);
  EXPECT_LE(S.Entries, 64u);
  EXPECT_GT(S.Evictions, 0u);
}

TEST(ProverCache, RecentEntriesSurviveEviction) {
  ProverCache::Config C;
  C.MaxEntries = 64;
  C.Shards = 1;
  ProverCache Cache(C);
  QueryBudget B;
  FormulaRef Pinned = ge(var("pc.pinned"));
  Cache.insert(Pinned, B, SatOutcome{SatResult::Unsat, false});
  for (int I = 0; I < 500; ++I) {
    // Touch the pinned entry between fills: promotion must keep it
    // resident across generation flips.
    ASSERT_TRUE(Cache.lookup(Pinned, B).has_value()) << "lost at " << I;
    Cache.insert(ge(var("pc.fill").plusConstant(-I)), B,
                 SatOutcome{SatResult::Sat, false});
  }
  std::optional<SatOutcome> Hit = Cache.lookup(Pinned, B);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Result, SatResult::Unsat);
}

// Forcing two distinct formulas onto one key exercises the collision
// path: entries must be discriminated by Formula::equal, never by hash
// alone.
TEST(ProverCache, HashCollisionsDiscriminatedByFormulaEqual) {
  ProverCache Cache;
  QueryBudget B;
  const size_t Key = 0x1234567;
  FormulaRef F1 = ge(var("pc.col1"));
  FormulaRef F2 = ge(var("pc.col2"));

  Cache.insertHashed(Key, F1, B, SatOutcome{SatResult::Sat, false});
  // Same key, different formula: a miss, not F1's outcome.
  EXPECT_FALSE(Cache.lookupHashed(Key, F2, B).has_value());

  Cache.insertHashed(Key, F2, B, SatOutcome{SatResult::Unsat, false});
  std::optional<SatOutcome> O1 = Cache.lookupHashed(Key, F1, B);
  std::optional<SatOutcome> O2 = Cache.lookupHashed(Key, F2, B);
  ASSERT_TRUE(O1.has_value());
  ASSERT_TRUE(O2.has_value());
  EXPECT_EQ(O1->Result, SatResult::Sat);
  EXPECT_EQ(O2->Result, SatResult::Unsat);
}

TEST(ProverCache, SameFormulaDifferentBudgetIsAMiss) {
  ProverCache Cache;
  FormulaRef F = ge(var("pc.bud"));
  QueryBudget B1;
  B1.DnfMaxDisjuncts = 2;
  QueryBudget B2 = B1;
  B2.DnfMaxDisjuncts = 1024;
  const size_t Key = 42; // Force both budgets onto one key.
  Cache.insertHashed(Key, F, B1, SatOutcome{SatResult::Unknown, false});
  EXPECT_FALSE(Cache.lookupHashed(Key, F, B2).has_value());
  ASSERT_TRUE(Cache.lookupHashed(Key, F, B1).has_value());
}

// The slicing tag is part of the key: a per-component verdict must never
// answer a whole-query lookup (or vice versa), and sliced and unsliced
// whole-query entries stay apart — the two modes can give up on
// different queries.
TEST(ProverCache, SlicingTagSeparatesEntries) {
  ProverCache Cache;
  FormulaRef F = ge(var("pc.slice"));
  QueryBudget Off;
  Off.SolverSlicing = QueryBudget::SlicingOff;
  QueryBudget On = Off;
  On.SolverSlicing = QueryBudget::SlicingOn;
  QueryBudget Comp = Off;
  Comp.SolverSlicing = QueryBudget::SlicingComponent;

  Cache.insert(F, Comp, SatOutcome{SatResult::Unsat, false});
  EXPECT_FALSE(Cache.lookup(F, Off).has_value());
  EXPECT_FALSE(Cache.lookup(F, On).has_value());
  ASSERT_TRUE(Cache.lookup(F, Comp).has_value());

  Cache.insert(F, On, SatOutcome{SatResult::Sat, false});
  ASSERT_TRUE(Cache.lookup(F, On).has_value());
  EXPECT_EQ(Cache.lookup(F, On)->Result, SatResult::Sat);
  EXPECT_EQ(Cache.lookup(F, Comp)->Result, SatResult::Unsat);
  EXPECT_FALSE(Cache.lookup(F, Off).has_value());
}

// Hits and misses split by level: SlicingComponent traffic lands in the
// component counters, everything else in the query counters, and the
// totals reconcile. The split is what lets bench_prover report a
// component hit rate.
TEST(ProverCache, HitStatsSplitByLevel) {
  ProverCache Cache;
  FormulaRef F = ge(var("pc.split"));
  QueryBudget Query;
  Query.SolverSlicing = QueryBudget::SlicingOn;
  QueryBudget Comp;
  Comp.SolverSlicing = QueryBudget::SlicingComponent;

  EXPECT_FALSE(Cache.lookup(F, Query).has_value()); // Query miss.
  EXPECT_FALSE(Cache.lookup(F, Comp).has_value());  // Component miss.
  Cache.insert(F, Query, SatOutcome{SatResult::Sat, false});
  Cache.insert(F, Comp, SatOutcome{SatResult::Sat, false});
  EXPECT_TRUE(Cache.lookup(F, Query).has_value()); // Query hit.
  EXPECT_TRUE(Cache.lookup(F, Comp).has_value());  // Component hit.
  EXPECT_TRUE(Cache.lookup(F, Comp).has_value());  // Component hit.

  ProverCache::Stats S = Cache.stats();
  EXPECT_EQ(S.QueryHits, 1u);
  EXPECT_EQ(S.QueryMisses, 1u);
  EXPECT_EQ(S.ComponentHits, 2u);
  EXPECT_EQ(S.ComponentMisses, 1u);
  EXPECT_EQ(S.Hits, S.QueryHits + S.ComponentHits);
  EXPECT_EQ(S.Misses, S.QueryMisses + S.ComponentMisses);
}

TEST(ProverCache, ClearEmptiesTheCache) {
  Prover P;
  FormulaRef F = ge(var("pc.clear"));
  P.checkSat(F);
  ASSERT_NE(P.cacheHandle(), nullptr);
  EXPECT_GT(P.cacheHandle()->stats().Entries, 0u);
  P.clearCache();
  EXPECT_EQ(P.cacheHandle()->stats().Entries, 0u);
  QueryBudget B = P.budget();
  EXPECT_FALSE(P.cacheHandle()->lookup(F, B).has_value());
}

} // namespace
