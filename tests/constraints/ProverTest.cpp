//===- ProverTest.cpp -----------------------------------------------------===//

#include "constraints/Prover.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

LinearExpr var(const char *Name) {
  return LinearExpr::variable(varId(Name));
}

FormulaRef ge(LinearExpr E) { return Formula::atom(Constraint::ge(std::move(E))); }

TEST(Prover, TrivialValidity) {
  Prover P;
  EXPECT_EQ(P.checkValid(Formula::mkTrue()), ProverResult::Proved);
  EXPECT_EQ(P.checkValid(Formula::mkFalse()), ProverResult::NotProved);
}

TEST(Prover, AtomValidity) {
  Prover P;
  // x >= 0 is not valid (x := -1).
  EXPECT_EQ(P.checkValid(ge(var("p.x"))), ProverResult::NotProved);
  // x >= x is valid.
  EXPECT_EQ(P.checkValid(ge(var("p.x") - var("p.x"))), ProverResult::Proved);
}

TEST(Prover, ImplicationChain) {
  Prover P;
  // x >= 5 implies x >= 3.
  EXPECT_EQ(P.checkImplies(ge(var("p.x").plusConstant(-5)),
                           ge(var("p.x").plusConstant(-3))),
            ProverResult::Proved);
  // x >= 3 does not imply x >= 5.
  EXPECT_EQ(P.checkImplies(ge(var("p.x").plusConstant(-3)),
                           ge(var("p.x").plusConstant(-5))),
            ProverResult::NotProved);
}

TEST(Prover, PaperRunningExampleBoundsVC) {
  Prover P;
  // Context of line 7 of Figure 1 under the synthesized invariant:
  //   %g3 >= 0, %g3 < n, n == %o1, %g2 == 4*%g3
  // Goal: 0 <= %g2 < 4n and 4 | %g2.
  FormulaRef Context = Formula::conj(
      {ge(var("p.%g3")),
       Formula::atom(Constraint::lt(var("p.%g3"), var("p.n"))),
       Formula::atom(Constraint::eq(var("p.n") - var("p.%o1"))),
       Formula::atom(Constraint::eq(var("p.%g2") - var("p.%g3").scaled(4)))});
  FormulaRef Goal = Formula::conj(
      {ge(var("p.%g2")),
       Formula::atom(Constraint::lt(var("p.%g2"), var("p.n").scaled(4))),
       Formula::atom(Constraint::divides(4, var("p.%g2")))});
  EXPECT_EQ(P.checkImplies(Context, Goal), ProverResult::Proved);

  // Dropping %g3 < n breaks the upper bound.
  FormulaRef Weaker = Formula::conj(
      {ge(var("p.%g3")),
       Formula::atom(Constraint::eq(var("p.n") - var("p.%o1"))),
       Formula::atom(Constraint::eq(var("p.%g2") - var("p.%g3").scaled(4)))});
  EXPECT_EQ(P.checkImplies(Weaker, Goal), ProverResult::NotProved);
}

TEST(Prover, DisjunctiveHypothesis) {
  Prover P;
  // (x >= 5 or x <= -5) implies x*x... not expressible; use |x| >= 5 via
  // disjunction implying x != 0 (as a disjunction goal).
  FormulaRef Hyp = Formula::disj2(ge(var("p.x").plusConstant(-5)),
                                  ge((-var("p.x")).plusConstant(-5)));
  FormulaRef Goal = Formula::negate(Formula::atom(Constraint::eq(var("p.x"))));
  EXPECT_EQ(P.checkImplies(Hyp, Goal), ProverResult::Proved);
}

TEST(Prover, ExistentialGoal) {
  Prover P;
  // exists q. x == 4q  is exactly 4 | x; provable from x == 8.
  VarId Q = varId("p.q");
  FormulaRef Hyp = Formula::atom(Constraint::eq(var("p.x").plusConstant(-8)));
  FormulaRef Goal = Formula::exists(
      Q, Formula::atom(
             Constraint::eq(var("p.x") - LinearExpr::variable(Q).scaled(4))));
  // not(Goal) becomes forall q. x != 4q, which the sat check approximates;
  // the approximation must never produce a wrong "Proved", and here it
  // yields Proved or Unknown. With x == 8 and a fresh free q, the
  // countermodel search instantiates q freely: x != 4q is satisfiable
  // (q := 1), so the result is Unknown, not NotProved.
  ProverResult R = P.checkImplies(Hyp, Goal);
  EXPECT_NE(R, ProverResult::NotProved);
}

TEST(Prover, DivisibilityGoalViaAtom) {
  Prover P;
  // The DIV atom form of the same goal is decided exactly.
  FormulaRef Hyp = Formula::atom(Constraint::eq(var("p.x").plusConstant(-8)));
  FormulaRef Goal = Formula::atom(Constraint::divides(4, var("p.x")));
  EXPECT_EQ(P.checkImplies(Hyp, Goal), ProverResult::Proved);

  FormulaRef Hyp2 = Formula::atom(Constraint::eq(var("p.x").plusConstant(-6)));
  EXPECT_EQ(P.checkImplies(Hyp2, Goal), ProverResult::NotProved);
}

TEST(Prover, AlignmentComposition) {
  Prover P;
  // 4 | a and 4 | b implies 4 | (a + b).
  FormulaRef Hyp =
      Formula::conj2(Formula::atom(Constraint::divides(4, var("p.a"))),
                     Formula::atom(Constraint::divides(4, var("p.b"))));
  FormulaRef Goal =
      Formula::atom(Constraint::divides(4, var("p.a") + var("p.b")));
  EXPECT_EQ(P.checkImplies(Hyp, Goal), ProverResult::Proved);
  // ... but not 8 | (a + b).
  FormulaRef Goal8 =
      Formula::atom(Constraint::divides(8, var("p.a") + var("p.b")));
  EXPECT_EQ(P.checkImplies(Hyp, Goal8), ProverResult::NotProved);
}

TEST(Prover, CacheHitsOnRepeatedQueries) {
  Prover P;
  FormulaRef F = Formula::implies(ge(var("p.x").plusConstant(-5)),
                                  ge(var("p.x").plusConstant(-3)));
  EXPECT_EQ(P.checkValid(F), ProverResult::Proved);
  uint64_t HitsBefore = P.stats().CacheHits;
  EXPECT_EQ(P.checkValid(F), ProverResult::Proved);
  EXPECT_GT(P.stats().CacheHits, HitsBefore);
}

TEST(Prover, CacheCanBeDisabled) {
  Prover::Options Opts;
  Opts.EnableCache = false;
  Prover P(Opts);
  FormulaRef F = Formula::implies(ge(var("p.x").plusConstant(-5)),
                                  ge(var("p.x").plusConstant(-3)));
  P.checkValid(F);
  P.checkValid(F);
  EXPECT_EQ(P.stats().CacheHits, 0u);
}

TEST(Prover, SatInterface) {
  Prover P;
  EXPECT_EQ(P.checkSat(ge(var("p.x"))), SatResult::Sat);
  EXPECT_EQ(P.checkSat(Formula::conj2(ge(var("p.x").plusConstant(-1)),
                                      ge(-var("p.x")))),
            SatResult::Unsat);
}

TEST(Prover, StatsCount) {
  Prover P;
  P.resetStats();
  P.checkValid(ge(var("p.x")));
  EXPECT_EQ(P.stats().ValidityQueries, 1u);
  EXPECT_GE(P.stats().SatQueries, 1u);
}

} // namespace
