//===- SerializeTest.cpp - Formula pool round-trip and robustness ---------===//
//
// The serialization contract: loading a pool re-interns every node
// pointer-equal to the original (same process), preserves the stable
// digest, and never crashes or fabricates formulas from corrupt bytes.
// The fuzz sections drive ≥10k randomly generated formulas through the
// round trip with a deterministic PRNG, so failures replay exactly.
//
//===----------------------------------------------------------------------===//

#include "constraints/Serialize.h"
#include "support/Digest.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mcsafe;

namespace {

/// Deterministic splitmix64 stream (not the library's mixer usage — just
/// a convenient reproducible PRNG for the fuzzer).
struct Rng {
  uint64_t State;
  explicit Rng(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    return support::mix64(State);
  }
  uint64_t below(uint64_t N) { return next() % N; }
  int64_t coeff() {
    int64_t C = static_cast<int64_t>(below(19)) - 9;
    return C == 0 ? 1 : C;
  }
};

LinearExpr randomExpr(Rng &R) {
  // Up to 4 distinct variables from a small pool, so collisions (and
  // thus coefficient merging in operator+) are common.
  static const char *Names[] = {"fz.a", "fz.b", "fz.c", "fz.d",
                                "fz.e", "fz.f", "fz.g", "fz.h"};
  LinearExpr E;
  unsigned Terms = static_cast<unsigned>(R.below(4));
  for (unsigned I = 0; I < Terms; ++I)
    E = E + LinearExpr::variable(varId(Names[R.below(8)])).scaled(R.coeff());
  return E.plusConstant(static_cast<int64_t>(R.below(2001)) - 1000);
}

FormulaRef randomFormula(Rng &R, unsigned Depth) {
  if (Depth == 0 || R.below(100) < 35) {
    switch (R.below(6)) {
    case 0:
      return Formula::atom(Constraint::ge(randomExpr(R)));
    case 1:
      return Formula::atom(Constraint::eq(randomExpr(R)));
    case 2:
      return Formula::atom(
          Constraint::divides(static_cast<int64_t>(R.below(16)) + 2,
                              randomExpr(R)));
    case 3:
      return Formula::atom(
          Constraint::notDivides(static_cast<int64_t>(R.below(16)) + 2,
                                 randomExpr(R)));
    case 4:
      return Formula::mkTrue();
    default:
      return Formula::mkFalse();
    }
  }
  switch (R.below(4)) {
  case 0: {
    std::vector<FormulaRef> Cs;
    unsigned N = static_cast<unsigned>(R.below(3)) + 2;
    for (unsigned I = 0; I < N; ++I)
      Cs.push_back(randomFormula(R, Depth - 1));
    return Formula::conj(std::move(Cs));
  }
  case 1: {
    std::vector<FormulaRef> Cs;
    unsigned N = static_cast<unsigned>(R.below(3)) + 2;
    for (unsigned I = 0; I < N; ++I)
      Cs.push_back(randomFormula(R, Depth - 1));
    return Formula::disj(std::move(Cs));
  }
  case 2:
    return Formula::exists(varId(R.below(2) ? "fz.a" : "fz.b"),
                           randomFormula(R, Depth - 1));
  default:
    return Formula::forall(varId(R.below(2) ? "fz.c" : "fz.d"),
                           randomFormula(R, Depth - 1));
  }
}

std::string serializePool(const std::vector<FormulaRef> &Fs,
                          std::vector<uint32_t> &Roots) {
  FormulaPoolWriter PW;
  Roots.clear();
  for (const FormulaRef &F : Fs)
    Roots.push_back(PW.add(F));
  ByteWriter W;
  PW.writeTo(W);
  return W.take();
}

TEST(Serialize, SingleFormulaRoundTripIsPointerEqual) {
  FormulaRef F = Formula::conj2(
      Formula::atom(Constraint::ge(LinearExpr::variable(varId("in.x")))),
      Formula::exists(varId("in.t"),
                      Formula::atom(Constraint::eq(
                          LinearExpr::variable(varId("in.t")).scaled(2) +
                          LinearExpr::variable(varId("in.x"))))));
  std::vector<uint32_t> Roots;
  std::string Bytes = serializePool({F}, Roots);
  ByteReader R(Bytes);
  std::optional<std::vector<FormulaRef>> Pool = loadFormulaPool(R);
  ASSERT_TRUE(Pool.has_value());
  ASSERT_LT(Roots[0], Pool->size());
  EXPECT_EQ((*Pool)[Roots[0]].get(), F.get());
}

TEST(Serialize, SharedSubtreesSerializeOnce) {
  FormulaRef A = Formula::atom(Constraint::ge(LinearExpr::variable(varId("in.s"))));
  FormulaRef F1 = Formula::conj2(A, Formula::mkTrue() /* collapses */);
  FormulaRef F2 = Formula::disj2(A, Formula::atom(Constraint::eq(
                                        LinearExpr::variable(varId("in.s")))));
  FormulaPoolWriter PW;
  uint32_t R1 = PW.add(F1);
  uint32_t R2 = PW.add(F2);
  uint32_t R1Again = PW.add(F1);
  EXPECT_EQ(R1, R1Again); // Dedup by node identity.
  EXPECT_NE(R1, R2);
  // A is below F2 but also IS F1 (conj with true collapses): one node.
  ByteWriter W;
  PW.writeTo(W);
  ByteReader R(W.bytes());
  std::optional<std::vector<FormulaRef>> Pool = loadFormulaPool(R);
  ASSERT_TRUE(Pool.has_value());
  EXPECT_EQ(Pool->size(), PW.nodeCount());
  EXPECT_EQ((*Pool)[R1].get(), F1.get());
  EXPECT_EQ((*Pool)[R2].get(), F2.get());
}

TEST(Serialize, FuzzRoundTripTenThousandFormulas) {
  Rng R(0x5eed5eed5eedULL);
  // Batches of 50 formulas per pool so the pool machinery (string
  // table, cross-formula node sharing) is exercised, 200 batches =
  // 10,000 formulas.
  for (unsigned Batch = 0; Batch < 200; ++Batch) {
    std::vector<FormulaRef> Fs;
    for (unsigned I = 0; I < 50; ++I)
      Fs.push_back(randomFormula(R, 3));
    std::vector<uint32_t> Roots;
    std::string Bytes = serializePool(Fs, Roots);

    ByteReader Rd(Bytes);
    std::optional<std::vector<FormulaRef>> Pool = loadFormulaPool(Rd);
    ASSERT_TRUE(Pool.has_value()) << "batch " << Batch;
    for (size_t I = 0; I < Fs.size(); ++I) {
      ASSERT_LT(Roots[I], Pool->size());
      const FormulaRef &Loaded = (*Pool)[Roots[I]];
      // Same process, so re-interning must give back the same node...
      EXPECT_EQ(Loaded.get(), Fs[I].get()) << "batch " << Batch << " #" << I;
      // ...and the stable digest is preserved by construction.
      EXPECT_EQ(stableFormulaDigest(Loaded), stableFormulaDigest(Fs[I]));
    }
    // Idempotence: re-serializing the loaded pool gives the same bytes.
    std::vector<uint32_t> Roots2;
    std::string Bytes2 = serializePool(Fs, Roots2);
    EXPECT_EQ(Bytes, Bytes2) << "batch " << Batch;
  }
}

TEST(Serialize, EveryTruncationFailsCleanly) {
  Rng R(0xabcdefULL);
  std::vector<FormulaRef> Fs;
  for (unsigned I = 0; I < 10; ++I)
    Fs.push_back(randomFormula(R, 3));
  std::vector<uint32_t> Roots;
  std::string Bytes = serializePool(Fs, Roots);
  // The pool is self-delimiting (var count, node count up front), so
  // every proper prefix must be rejected — never parsed into formulas.
  for (size_t Len = 0; Len < Bytes.size(); ++Len) {
    ByteReader Rd(std::string_view(Bytes).substr(0, Len));
    EXPECT_FALSE(loadFormulaPool(Rd).has_value()) << "prefix " << Len;
  }
}

TEST(Serialize, BitFlipsNeverCrashOrFabricateNulls) {
  Rng R(0x1234567ULL);
  std::vector<FormulaRef> Fs;
  for (unsigned I = 0; I < 5; ++I)
    Fs.push_back(randomFormula(R, 2));
  std::vector<uint32_t> Roots;
  const std::string Bytes = serializePool(Fs, Roots);
  for (size_t Pos = 0; Pos < Bytes.size(); ++Pos) {
    for (uint8_t Bit : {0, 3, 7}) {
      std::string Mut = Bytes;
      Mut[Pos] = static_cast<char>(Mut[Pos] ^ (1u << Bit));
      ByteReader Rd(Mut);
      std::optional<std::vector<FormulaRef>> Pool = loadFormulaPool(Rd);
      // A flip may still parse (e.g. in a coefficient): that's fine —
      // the certificate layer rejects by content digest. Here the
      // contract is weaker: no crash, and no null formulas.
      if (Pool) {
        for (const FormulaRef &F : *Pool)
          EXPECT_NE(F.get(), nullptr);
      }
    }
  }
}

TEST(Serialize, RejectsOversizedCounts) {
  // A var count claiming more entries than bytes remain must be
  // rejected before any allocation proportional to it happens.
  ByteWriter W;
  W.u32(0xffffffffu);
  ByteReader R1(W.bytes());
  EXPECT_FALSE(loadFormulaPool(R1).has_value());

  // Same for the node count behind an empty var table.
  ByteWriter W2;
  W2.u32(0);
  W2.u32(0xffffffffu);
  ByteReader R2(W2.bytes());
  EXPECT_FALSE(loadFormulaPool(R2).has_value());
}

TEST(Serialize, RejectsForwardAndOutOfRangeChildIndices) {
  // Hand-build a pool: no vars, 1 node claiming kind=And with a child
  // index pointing at itself (forward reference).
  ByteWriter W;
  W.u32(0); // var count
  W.u32(1); // node count
  W.u8(3);  // FormulaKind::And (see Formula.h ordering)
  W.u32(1); // child count
  W.u32(0); // child index 0 — but node 0 is *this* node: invalid.
  ByteReader R(W.bytes());
  EXPECT_FALSE(loadFormulaPool(R).has_value());
}

TEST(Serialize, StableDigestEqualIffBytesEqual) {
  Rng R(0x777ULL);
  for (unsigned I = 0; I < 200; ++I) {
    FormulaRef A = randomFormula(R, 2);
    FormulaRef B = randomFormula(R, 2);
    const bool SameNode = A.get() == B.get();
    EXPECT_EQ(stableFormulaDigest(A) == stableFormulaDigest(B), SameNode)
        << "iteration " << I;
  }
}

} // namespace
