//===- SliceTest.cpp - Query slicing unit and differential tests ----------===//
//
// The slicing layer must be a pure optimization: connected-component
// decomposition, equality elimination, and the two-level memo may change
// how a satisfiability query is solved, never what it answers. The fuzz
// test at the bottom checks that contract over ten thousand random
// conjunctions; the unit tests above it pin down the decomposition and
// the pre-pass on hand-built systems.
//
//===----------------------------------------------------------------------===//

#include "constraints/Slice.h"

#include "constraints/Prover.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

using namespace mcsafe;

namespace {

LinearExpr var(const char *Name) {
  return LinearExpr::variable(varId(Name));
}

//===----------------------------------------------------------------------===//
// partitionComponents
//===----------------------------------------------------------------------===//

TEST(SlicePartition, DisjointAtomsEachFormAComponent) {
  std::vector<Constraint> Atoms = {
      Constraint::ge(var("sl.a")),
      Constraint::ge(var("sl.b")),
      Constraint::divides(4, var("sl.c")),
  };
  std::vector<unsigned> Comp;
  EXPECT_EQ(slice::partitionComponents(Atoms, Comp), 3u);
  // Components are numbered in order of their first atom.
  EXPECT_EQ(Comp, (std::vector<unsigned>{0, 1, 2}));
}

TEST(SlicePartition, SharedVariableMergesAtoms) {
  // a-b and b-c chain into one component; d stands alone.
  std::vector<Constraint> Atoms = {
      Constraint::ge(var("sl.a") - var("sl.b")),
      Constraint::ge(var("sl.d")),
      Constraint::ge(var("sl.b") - var("sl.c")),
      Constraint::ge(var("sl.c").plusConstant(7)),
  };
  std::vector<unsigned> Comp;
  EXPECT_EQ(slice::partitionComponents(Atoms, Comp), 2u);
  EXPECT_EQ(Comp, (std::vector<unsigned>{0, 1, 0, 0}));
}

TEST(SlicePartition, TransitiveClosureAcrossManyAtoms) {
  // A chain v0-v1, v1-v2, ..., v5-v6 is one component no matter how the
  // atoms are ordered.
  const char *Names[] = {"sl.v0", "sl.v1", "sl.v2", "sl.v3",
                         "sl.v4", "sl.v5", "sl.v6"};
  std::vector<Constraint> Atoms;
  for (int I = 5; I >= 0; --I)
    Atoms.push_back(Constraint::ge(var(Names[I]) - var(Names[I + 1])));
  std::vector<unsigned> Comp;
  EXPECT_EQ(slice::partitionComponents(Atoms, Comp), 1u);
}

TEST(SlicePartition, VariableFreeAtomIsSingleton) {
  std::vector<Constraint> Atoms = {
      Constraint::ge(var("sl.a")),
      Constraint::ge(LinearExpr::constant(1)), // 1 >= 0, no variables.
      Constraint::ge(var("sl.a").plusConstant(3)),
  };
  std::vector<unsigned> Comp;
  EXPECT_EQ(slice::partitionComponents(Atoms, Comp), 2u);
  EXPECT_EQ(Comp, (std::vector<unsigned>{0, 1, 0}));
}

//===----------------------------------------------------------------------===//
// eliminateEqualities
//===----------------------------------------------------------------------===//

TEST(SliceEliminate, UnitPivotSubstitutes) {
  // x - 5 == 0 pivots x := 5 into x - y >= 0, leaving 5 - y >= 0.
  std::vector<Constraint> Atoms = {
      Constraint::eq(var("sl.x").plusConstant(-5)),
      Constraint::ge(var("sl.x") - var("sl.y")),
  };
  uint64_t Eliminated = 0;
  EXPECT_EQ(slice::eliminateEqualities(Atoms, Eliminated), std::nullopt);
  EXPECT_EQ(Eliminated, 1u);
  ASSERT_EQ(Atoms.size(), 1u);
  std::vector<VarId> Vars;
  Atoms[0].collectVars(Vars);
  EXPECT_EQ(Vars, (std::vector<VarId>{varId("sl.y")}));
}

TEST(SliceEliminate, NegativeUnitPivotSubstitutes) {
  // -x + y == 0 pivots x := y; x >= 3 becomes y >= 3.
  std::vector<Constraint> Atoms = {
      Constraint::eq(var("sl.y") - var("sl.x")),
      Constraint::ge(var("sl.x").plusConstant(-3)),
  };
  uint64_t Eliminated = 0;
  EXPECT_EQ(slice::eliminateEqualities(Atoms, Eliminated), std::nullopt);
  EXPECT_EQ(Eliminated, 1u);
  ASSERT_EQ(Atoms.size(), 1u);
  std::vector<VarId> Vars;
  Atoms[0].collectVars(Vars);
  ASSERT_EQ(Vars.size(), 1u);
}

TEST(SliceEliminate, NonUnitCoefficientsNeverPivot) {
  // 2x + 3y - 1 == 0 has integer solutions, but x = (1 - 3y)/2 is not
  // integer-exact, so the pass must leave the system alone.
  std::vector<Constraint> Atoms = {
      Constraint::eq(var("sl.x").scaled(2) + var("sl.y").scaled(3) +
                     LinearExpr::constant(-1)),
      Constraint::ge(var("sl.x")),
  };
  uint64_t Eliminated = 0;
  EXPECT_EQ(slice::eliminateEqualities(Atoms, Eliminated), std::nullopt);
  EXPECT_EQ(Eliminated, 0u);
  EXPECT_EQ(Atoms.size(), 2u);
  EXPECT_EQ(Atoms[0].kind(), ConstraintKind::EQ);
}

TEST(SliceEliminate, ContradictionSurfacesAsUnsat) {
  // x == 5 and x == 3: the pivot substitution turns the second equation
  // into the constant falsehood 2 == 0.
  std::vector<Constraint> Atoms = {
      Constraint::eq(var("sl.x").plusConstant(-5)),
      Constraint::eq(var("sl.x").plusConstant(-3)),
  };
  uint64_t Eliminated = 0;
  EXPECT_EQ(slice::eliminateEqualities(Atoms, Eliminated), SatResult::Unsat);
}

TEST(SliceEliminate, ChainedPivotsDrainTheSystem) {
  // x == y, y == 7, x >= z: two rounds leave only 7 - z >= 0.
  std::vector<Constraint> Atoms = {
      Constraint::eq(var("sl.x") - var("sl.y")),
      Constraint::eq(var("sl.y").plusConstant(-7)),
      Constraint::ge(var("sl.x") - var("sl.z")),
  };
  uint64_t Eliminated = 0;
  EXPECT_EQ(slice::eliminateEqualities(Atoms, Eliminated), std::nullopt);
  EXPECT_EQ(Eliminated, 2u);
  ASSERT_EQ(Atoms.size(), 1u);
  std::vector<VarId> Vars;
  Atoms[0].collectVars(Vars);
  EXPECT_EQ(Vars, (std::vector<VarId>{varId("sl.z")}));
}

//===----------------------------------------------------------------------===//
// The slicing prover: counters and the single-component fast path
//===----------------------------------------------------------------------===//

FormulaRef conjOf(std::vector<Constraint> Atoms) {
  std::vector<FormulaRef> Refs;
  for (const Constraint &C : Atoms)
    Refs.push_back(Formula::atom(C));
  return Formula::conj(std::move(Refs));
}

TEST(SliceProver, SingleComponentTakesTheFastPath) {
  Prover::Options O;
  O.EnableSlicing = true;
  Prover P(O);
  // All atoms share sl.fx: one component, never counted multi-component.
  EXPECT_EQ(P.checkSat(conjOf({
                Constraint::ge(var("sl.fx")),
                Constraint::le(var("sl.fx"), LinearExpr::constant(9)),
                Constraint::divides(2, var("sl.fx")),
            })),
            SatResult::Sat);
  const SliceStats &S = P.stats().Slice;
  EXPECT_EQ(S.DisjunctQueries, 1u);
  EXPECT_EQ(S.Components, 1u);
  EXPECT_EQ(S.MultiComponent, 0u);
}

TEST(SliceProver, DisjointConjunctionSplits) {
  Prover::Options O;
  O.EnableSlicing = true;
  Prover P(O);
  EXPECT_EQ(P.checkSat(conjOf({
                Constraint::ge(var("sl.ga")),
                Constraint::ge(var("sl.gb").plusConstant(-4)),
                Constraint::divides(8, var("sl.gc")),
            })),
            SatResult::Sat);
  const SliceStats &S = P.stats().Slice;
  EXPECT_EQ(S.Components, 3u);
  EXPECT_EQ(S.MultiComponent, 1u);
}

TEST(SliceProver, UnsatComponentRefutesTheConjunction) {
  Prover::Options O;
  O.EnableSlicing = true;
  Prover P(O);
  // sl.hb is impossible; sl.ha alone is fine.
  EXPECT_EQ(P.checkSat(conjOf({
                Constraint::ge(var("sl.ha")),
                Constraint::ge(var("sl.hb").plusConstant(-5)),
                Constraint::le(var("sl.hb"), LinearExpr::constant(2)),
            })),
            SatResult::Unsat);
}

TEST(SliceProver, ComponentVerdictsHitWarmAcrossQueries) {
  Prover::Options O;
  O.EnableSlicing = true;
  Prover P(O);
  // Two queries sharing the component {sl.ka >= 0}: the second solves it
  // from the memo.
  EXPECT_EQ(P.checkSat(conjOf({
                Constraint::ge(var("sl.ka")),
                Constraint::ge(var("sl.kb").plusConstant(-1)),
            })),
            SatResult::Sat);
  EXPECT_EQ(P.checkSat(conjOf({
                Constraint::ge(var("sl.ka")),
                Constraint::divides(4, var("sl.kc")),
            })),
            SatResult::Sat);
  EXPECT_GE(P.stats().Slice.CacheHits, 1u);
}

//===----------------------------------------------------------------------===//
// Differential fuzz: sliced and unsliced provers agree on every verdict
//===----------------------------------------------------------------------===//

/// Deterministic 64-bit LCG (Knuth constants), as in OmegaPropertyTest.
struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 33;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // Inclusive.
    return Lo + static_cast<int64_t>(next() %
                                     static_cast<uint64_t>(Hi - Lo + 1));
  }
};

Constraint randomAtom(Lcg &Rng, const std::vector<VarId> &Pool) {
  // One or two variables per atom: single-variable atoms make components
  // split, two-variable atoms make them merge — the fuzz needs both.
  LinearExpr E = LinearExpr::constant(Rng.range(-8, 8));
  int NVars = static_cast<int>(Rng.range(1, 2));
  for (int I = 0; I < NVars; ++I) {
    int64_t C = Rng.range(-3, 3);
    if (C == 0)
      C = 1;
    E = E + LinearExpr::variable(
                Pool[static_cast<size_t>(Rng.next()) % Pool.size()])
                .scaled(C);
  }
  switch (Rng.range(0, 3)) {
  case 0:
    return Constraint::ge(E);
  case 1:
    return Constraint::eq(E);
  case 2:
    return Constraint::divides(Rng.range(2, 8), E);
  default:
    return Constraint::notDivides(Rng.range(2, 8), E);
  }
}

TEST(SliceFuzz, TenThousandConjunctionsAgreeWithUnslicedProver) {
  std::vector<VarId> Pool;
  for (const char *N : {"slf.a", "slf.b", "slf.c", "slf.d", "slf.e",
                        "slf.f"})
    Pool.push_back(varId(N));

  Prover::Options OffOpts;
  OffOpts.EnableSlicing = false;
  Prover Off(OffOpts);
  Prover::Options OnOpts;
  OnOpts.EnableSlicing = true;
  Prover On(OnOpts);

  Lcg Rng(0x51Ce5eedull);
  for (int Iter = 0; Iter < 10000; ++Iter) {
    int NAtoms = static_cast<int>(Rng.range(1, 6));
    std::vector<FormulaRef> Atoms;
    for (int I = 0; I < NAtoms; ++I)
      Atoms.push_back(Formula::atom(randomAtom(Rng, Pool)));
    FormulaRef F = Formula::conj(Atoms);
    // Every fifth formula is a disjunction of two conjunctions, so the
    // multi-disjunct path (disjunct dedup and the whole-disjunct memo)
    // is exercised too.
    if (Iter % 5 == 0) {
      std::vector<FormulaRef> Other;
      for (int I = 0, N = static_cast<int>(Rng.range(1, 3)); I < N; ++I)
        Other.push_back(Formula::atom(randomAtom(Rng, Pool)));
      F = Formula::disj2(F, Formula::conj(Other));
    }
    SatResult ROff = Off.checkSat(F);
    SatResult ROn = On.checkSat(F);
    // The provers run warm across all ten thousand queries, so this also
    // checks that memoized component verdicts never leak a wrong answer.
    ASSERT_EQ(ROff, ROn) << "iteration " << Iter;
  }
  // The runs must actually have gone through the slicer. (Not all 10k:
  // repeated formulas hit the prover's whole-query cache before ever
  // reaching it, and constant formulas short-circuit earlier still.)
  EXPECT_GE(On.stats().Slice.DisjunctQueries, 5000u);
  EXPECT_GE(On.stats().Slice.MultiComponent, 100u);
  EXPECT_EQ(Off.stats().Slice.DisjunctQueries, 0u);
}

} // namespace
