//===- ChaosTest.cpp ------------------------------------------------------===//
//
// The chaos driver from the fault-injection harness: replay the corpus
// with deterministic faults injected at allocator, prover, cache, and
// pool sites, and assert the fail-sound invariant:
//
//   (1) no crash and no uncaught exception,
//   (2) no hang (every check returns),
//   (3) never a Safe verdict the fault-free run did not also produce.
//
// In builds without MCSAFE_FAULT_INJECTION the fault points compile to
// `false`, so these tests still run — they then simply assert that an
// installed-but-disarmed plan changes nothing.
//
//===----------------------------------------------------------------------===//

#include "checker/CertStore.h"
#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <string>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

std::map<std::string, CheckVerdict> runCorpus() {
  std::map<std::string, CheckVerdict> Verdicts;
  for (const CorpusProgram &P : corpus::corpus()) {
    SafetyChecker Checker;
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    Verdicts[P.Name] = R.Verdict;
  }
  return Verdicts;
}

class Chaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Chaos, FaultsNeverManufactureASafeVerdict) {
  std::map<std::string, CheckVerdict> Baseline = runCorpus();

  support::FaultPlan Plan(GetParam());
  support::FaultPlan::install(&Plan);
  std::map<std::string, CheckVerdict> Faulted = runCorpus();
  support::FaultPlan::install(nullptr);

  for (const auto &[Name, Verdict] : Faulted) {
    // Every degraded path moves toward Unknown / recompute / inline /
    // InternalError — never toward Safe. A Safe under faults that the
    // fault-free run did not produce would be an unsound degradation.
    if (Verdict == CheckVerdict::Safe)
      EXPECT_EQ(Baseline[Name], CheckVerdict::Safe) << Name;
    // Likewise a fault must not invent violations.
    if (Verdict == CheckVerdict::Unsafe)
      EXPECT_EQ(Baseline[Name], CheckVerdict::Unsafe) << Name;
  }

#if !defined(MCSAFE_FAULT_INJECTION)
  // Fault points are compiled out: the plan never fires and the run is
  // bit-for-bit the baseline.
  EXPECT_EQ(Plan.firedCount(), 0u);
  EXPECT_EQ(Faulted, Baseline);
#endif
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos, ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "seed" + std::to_string(I.param);
                         });

std::map<std::string, CheckVerdict> runCorpusWithStore(CertStore &Store) {
  std::map<std::string, CheckVerdict> Verdicts;
  for (const CorpusProgram &P : corpus::corpus()) {
    SafetyChecker::Options Opts;
    Opts.Certs = &Store;
    SafetyChecker Checker(Opts);
    Verdicts[P.Name] = Checker.checkSource(P.Asm, P.Policy).Verdict;
  }
  return Verdicts;
}

class CertChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CertChaos, CertFaultSitesDegradeToColdNeverToUnsoundSafe) {
  // The cert/open, cert/read, and cert/write fault sites: a store that
  // randomly fails its I/O must only ever cost warm hits (checks fall
  // back cold), never crash and never change a verdict. The warm pass
  // runs against a store the cold pass populated, so both directions
  // (failing reads of good certificates, failing writes of new ones)
  // are exercised.
  std::map<std::string, CheckVerdict> Baseline = runCorpus();

  std::string Dir =
      (std::filesystem::temp_directory_path() /
       ("mcsafe-chaos-cert-" + std::to_string(GetParam()) + "-" +
        std::to_string(::getpid())))
          .string();
  std::filesystem::remove_all(Dir);
  CertStore Store(Dir);

  support::FaultPlan Plan(GetParam());
  support::FaultPlan::install(&Plan);
  std::map<std::string, CheckVerdict> Cold = runCorpusWithStore(Store);
  std::map<std::string, CheckVerdict> Warm = runCorpusWithStore(Store);
  support::FaultPlan::install(nullptr);

  // Fail-sound in both directions, as in the main chaos test: a fault
  // (cert or otherwise) may cost a definitive verdict, never invent one.
  for (const auto *Run : {&Cold, &Warm})
    for (const auto &[Name, Verdict] : *Run) {
      if (Verdict == CheckVerdict::Safe) {
        EXPECT_EQ(Baseline[Name], CheckVerdict::Safe) << Name;
      }
      if (Verdict == CheckVerdict::Unsafe) {
        EXPECT_EQ(Baseline[Name], CheckVerdict::Unsafe) << Name;
      }
    }

#if !defined(MCSAFE_FAULT_INJECTION)
  // Fault points compiled out: verdicts are exactly the baseline and
  // the second pass is all hits.
  EXPECT_EQ(Plan.firedCount(), 0u);
  EXPECT_EQ(Cold, Baseline);
  EXPECT_EQ(Warm, Baseline);
  EXPECT_EQ(Store.stats().Hits, corpus::corpus().size());
#else
  // Under fire the counters still balance: every check either hit or
  // went cold; nothing vanished.
  EXPECT_EQ(Store.stats().Hits + Store.stats().Misses +
                Store.stats().Corrupt + Store.stats().Stale,
            2 * corpus::corpus().size());
#endif

  std::filesystem::remove_all(Dir);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CertChaos, ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "seed" + std::to_string(I.param);
                         });

TEST(Chaos, FaultsComposeWithAStepBudget) {
  // Faults and budgets together must still produce structured verdicts.
  support::FaultPlan Plan(5);
  support::FaultPlan::install(&Plan);
  for (const CorpusProgram &P : corpus::corpus()) {
    SafetyChecker::Options Opts;
    Opts.Limits.ProverSteps = 50;
    SafetyChecker Checker(Opts);
    CheckReport R = Checker.checkSource(P.Asm, P.Policy);
    if (R.Verdict == CheckVerdict::Safe)
      EXPECT_TRUE(P.ExpectSafe) << P.Name;
  }
  support::FaultPlan::install(nullptr);
}

} // namespace
