//===- CharacteristicsTest.cpp - Pin the Figure 9 characteristics ---------===//
//
// Pins the measured characteristics of our corpus (the left half of the
// Figure 9 table) so structural regressions in the assembler, the CFG
// normalizer, or the annotation phase are caught immediately. The
// paper-reported values live in CorpusProgram::Paper and are compared
// qualitatively in EXPERIMENTS.md; these are the exact values of *our*
// re-implementations.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

struct Expected {
  const char *Name;
  uint32_t Instructions, Branches, Loops, InnerLoops, Calls, TrustedCalls;
  uint64_t GlobalConditions;
};

const Expected Table[] = {
    {"Sum", 13, 2, 1, 0, 0, 0, 4},
    {"PagingPolicy", 21, 4, 2, 1, 0, 0, 6},
    {"StartTimer", 16, 1, 0, 0, 1, 1, 11},
    {"Hash", 28, 4, 1, 0, 1, 1, 10},
    {"BubbleSort", 24, 3, 2, 1, 0, 0, 16},
    {"StopTimer", 31, 2, 0, 0, 2, 2, 16},
    {"Btree", 37, 6, 2, 1, 0, 0, 12},
    {"Btree2", 73, 8, 2, 1, 4, 0, 12},
    {"HeapSort2", 70, 6, 4, 2, 3, 0, 54},
    {"HeapSort", 83, 10, 4, 2, 0, 0, 54},
    {"jPVM", 136, 9, 3, 0, 21, 21, 17},
    {"StackSmashing", 292, 77, 7, 1, 2, 2, 32},
    {"MD5", 913, 5, 5, 2, 6, 0, 336},
};

class Characteristics : public ::testing::TestWithParam<Expected> {};

TEST_P(Characteristics, MatchPinnedValues) {
  const Expected &E = GetParam();
  const CorpusProgram &P = corpusProgram(E.Name);
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(P.Asm, P.Policy);
  ASSERT_TRUE(R.InputsOk) << R.Diags.str();
  EXPECT_EQ(R.Chars.Instructions, E.Instructions);
  EXPECT_EQ(R.Chars.Branches, E.Branches);
  EXPECT_EQ(R.Chars.Loops, E.Loops);
  EXPECT_EQ(R.Chars.InnerLoops, E.InnerLoops);
  EXPECT_EQ(R.Chars.Calls, E.Calls);
  EXPECT_EQ(R.Chars.TrustedCalls, E.TrustedCalls);
  EXPECT_EQ(R.Chars.GlobalConditions, E.GlobalConditions);
}

TEST_P(Characteristics, LoopAndCallShapeMatchesPaper) {
  // The loop nesting and call structure are the paper-faithful part of
  // the corpus; assert them against the paper's Figure 9 row exactly.
  const Expected &E = GetParam();
  const CorpusProgram &P = corpusProgram(E.Name);
  EXPECT_EQ(static_cast<int>(E.Loops), P.Paper.Loops);
  EXPECT_EQ(static_cast<int>(E.InnerLoops), P.Paper.InnerLoops);
  EXPECT_EQ(static_cast<int>(E.Calls), P.Paper.Calls);
}

INSTANTIATE_TEST_SUITE_P(
    Figure9, Characteristics, ::testing::ValuesIn(Table),
    [](const ::testing::TestParamInfo<Expected> &Info) {
      return std::string(Info.param.Name);
    });

} // namespace
