//===- DynamicValidationTest.cpp - Execute the corpus concretely ----------===//
//
// Cross-validates the static checker dynamically: the corpus programs
// are run on the concrete interpreter with real inputs. The programs the
// checker proved safe execute to completion and compute what they claim
// to compute; the violations the checker reported (PagingPolicy's null
// dereference, StackSmashing's buffer overflow) actually happen.
//
//===----------------------------------------------------------------------===//

#include "cfg/Cfg.h"
#include "corpus/Corpus.h"
#include "sparc/AsmParser.h"
#include "sparc/Interpreter.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::sparc;
using namespace mcsafe::corpus;

namespace {

Module assembleCorpus(const char *Name) {
  std::string Error;
  std::optional<Module> M = assemble(corpusProgram(Name).Asm, &Error);
  EXPECT_TRUE(M.has_value()) << Error;
  return std::move(*M);
}

/// Writes a word array into interpreter memory.
void writeArray(Interpreter &I, uint32_t Base,
                const std::vector<int32_t> &Values) {
  I.mapRegion(Base, static_cast<uint32_t>(4 * Values.size()));
  for (size_t K = 0; K < Values.size(); ++K)
    I.write32(Base + 4 * static_cast<uint32_t>(K),
              static_cast<uint32_t>(Values[K]));
}

std::vector<int32_t> readArray(const Interpreter &I, uint32_t Base,
                               size_t N) {
  std::vector<int32_t> Out;
  for (size_t K = 0; K < N; ++K)
    Out.push_back(static_cast<int32_t>(
        I.read32(Base + 4 * static_cast<uint32_t>(K))));
  return Out;
}

TEST(DynamicValidation, SumComputesTheSum) {
  Module M = assembleCorpus("Sum");
  Interpreter I(M);
  writeArray(I, 0x1000, {3, 1, 4, 1, 5});
  I.setReg(O0, 0x1000);
  I.setReg(O1, 5);
  Interpreter::Result R = I.run();
  ASSERT_EQ(R.Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O0), 14u);
}

TEST(DynamicValidation, SumOfEmptyArrayIsZero) {
  Module M = assembleCorpus("Sum");
  Interpreter I(M);
  writeArray(I, 0x1000, {42});
  I.setReg(O0, 0x1000);
  I.setReg(O1, 0); // The guard must keep us out of the loop.
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O0), 0u);
}

TEST(DynamicValidation, BubbleSortSorts) {
  Module M = assembleCorpus("BubbleSort");
  Interpreter I(M);
  std::vector<int32_t> Data = {9, -3, 5, 0, 5, 1, 8};
  writeArray(I, 0x1000, Data);
  I.setReg(O0, 0x1000);
  I.setReg(O1, static_cast<uint32_t>(Data.size()));
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  std::vector<int32_t> Sorted = Data;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(readArray(I, 0x1000, Data.size()), Sorted);
}

TEST(DynamicValidation, HeapSortSorts) {
  Module M = assembleCorpus("HeapSort");
  Interpreter I(M);
  std::vector<int32_t> Data = {4, 7, 1, 9, 3, 3, 12, -8, 0, 2};
  writeArray(I, 0x1000, Data);
  I.setReg(O0, 0x1000);
  I.setReg(O1, static_cast<uint32_t>(Data.size()));
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  std::vector<int32_t> Sorted = Data;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(readArray(I, 0x1000, Data.size()), Sorted);
}

TEST(DynamicValidation, HeapSort2SortsInterprocedurally) {
  Module M = assembleCorpus("HeapSort2");
  Interpreter I(M);
  std::vector<int32_t> Data = {6, 2, 8, 1, 9, 9, -5, 4};
  writeArray(I, 0x1000, Data);
  I.setReg(O0, 0x1000);
  I.setReg(O1, static_cast<uint32_t>(Data.size()));
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  std::vector<int32_t> Sorted = Data;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(readArray(I, 0x1000, Data.size()), Sorted);
}

/// Lays out a little search tree: node = {key, val, left, right}.
uint32_t makeNode(Interpreter &I, uint32_t Addr, int32_t Key, int32_t Val,
                  uint32_t Left, uint32_t Right) {
  I.mapRegion(Addr, 16);
  I.write32(Addr + 0, static_cast<uint32_t>(Key));
  I.write32(Addr + 4, static_cast<uint32_t>(Val));
  I.write32(Addr + 8, Left);
  I.write32(Addr + 12, Right);
  return Addr;
}

TEST(DynamicValidation, BtreeCountsHits) {
  Module M = assembleCorpus("Btree");
  Interpreter I(M);
  uint32_t L = makeNode(I, 0x2010, 5, 2, 0, 0);
  uint32_t R = makeNode(I, 0x2020, 15, 0, 0, 0); // val 0 = deleted
  uint32_t Root = makeNode(I, 0x2000, 10, 1, L, R);
  writeArray(I, 0x3000, {5, 15, 10, -1, 99});
  I.setReg(O0, Root);
  I.setReg(O1, 0x3000);
  I.setReg(O2, 5);
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  // 5 and 10 hit; 15 is deleted; -1 is skipped; 99 misses.
  EXPECT_EQ(I.reg(O0), 2u);
}

TEST(DynamicValidation, Btree2AgreesWithBtree) {
  Module M = assembleCorpus("Btree2");
  Interpreter I(M);
  uint32_t L = makeNode(I, 0x2010, 5, 2, 0, 0);
  uint32_t R = makeNode(I, 0x2020, 15, 0, 0, 0);
  uint32_t Root = makeNode(I, 0x2000, 10, 1, L, R);
  writeArray(I, 0x3000, {5, 15, 10, -1, 99});
  I.setReg(O0, Root);
  I.setReg(O1, 0x3000);
  I.setReg(O2, 5);
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O0), 2u);
}

TEST(DynamicValidation, PagingPolicyNullHeadTrapsAsPredicted) {
  // The checker's reported violation manifests concretely: with a null
  // list head, the first dereference traps at address 4 (head->refbit).
  Module M = assembleCorpus("PagingPolicy");
  Interpreter I(M);
  I.setReg(O0, 0); // null head
  I.setReg(O1, 1);
  Interpreter::Result R = I.run();
  EXPECT_EQ(R.Reason, StopReason::UnmappedAccess);
  EXPECT_EQ(R.FaultAddr, 4u);
}

TEST(DynamicValidation, PagingPolicyFindsVictimOnValidList) {
  Module M = assembleCorpus("PagingPolicy");
  Interpreter I(M);
  // Two pages: pfn 7 referenced, pfn 9 unreferenced -> victim 9.
  I.mapRegion(0x2000, 24);
  I.write32(0x2000 + 0, 7);      // page0.pfn
  I.write32(0x2000 + 4, 1);      // page0.refbit
  I.write32(0x2000 + 8, 0x200C); // page0.next
  I.write32(0x200C + 0, 9);      // page1.pfn
  I.write32(0x200C + 4, 0);      // page1.refbit
  I.write32(0x200C + 8, 0);      // page1.next = null
  I.setReg(O0, 0x2000);
  I.setReg(O1, 1);
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O0), 9u);
}

TEST(DynamicValidation, StackSmashingOverflowsAsPredicted) {
  Module M = assembleCorpus("StackSmashing");
  Interpreter I(M);
  I.registerHost("get_request", [](Interpreter &It) {
    It.setReg(O0, 3); // A ladder case that reaches the copy loop.
  });
  I.registerHost("get_length", [](Interpreter &It) {
    It.setReg(O0, 20); // Attacker-controlled: beyond the 16-word buffer.
  });
  // The frame lives at %sp - 112 within the interpreter's default stack.
  uint32_t FrameBase = 0xEFFFF000u - 112;
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  // buf[16] (offset 64) is the 'req' slot, written as 3 before the copy
  // loop; the out-of-bounds write at i == 16 clobbered it with 16.
  EXPECT_EQ(I.read32(FrameBase + 64), 16u);
}

TEST(DynamicValidation, StackSmashingInBoundsLeavesFrameIntact) {
  Module M = assembleCorpus("StackSmashing");
  Interpreter I(M);
  I.registerHost("get_request", [](Interpreter &It) {
    It.setReg(O0, 3);
  });
  I.registerHost("get_length", [](Interpreter &It) {
    It.setReg(O0, 8); // In bounds: no smash.
  });
  uint32_t FrameBase = 0xEFFFF000u - 112;
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.read32(FrameBase + 64), 3u); // 'req' survives.
}

TEST(DynamicValidation, Md5UpdateIsDeterministic) {
  Module M = assembleCorpus("MD5");
  auto RunOnce = [&M](uint32_t Seed) {
    Interpreter I(M);
    I.mapRegion(0x2000, 88); // md5ctx
    for (int K = 0; K < 4; ++K)
      I.write32(0x2000 + 4 * K, 0x67452301u + Seed * K);
    std::vector<int32_t> Msg;
    for (int K = 0; K < 20; ++K)
      Msg.push_back(static_cast<int32_t>(K * 2654435761u));
    writeArray(I, 0x4000, Msg);
    I.setReg(O0, 0x2000);
    I.setReg(O1, 0x4000);
    I.setReg(O2, 20);
    EXPECT_EQ(I.run(4000000).Reason, StopReason::Returned);
    std::vector<uint32_t> State;
    for (int K = 0; K < 4; ++K)
      State.push_back(I.read32(0x2000 + 4 * K));
    return State;
  };
  std::vector<uint32_t> A = RunOnce(0);
  std::vector<uint32_t> B = RunOnce(0);
  EXPECT_EQ(A, B); // Deterministic.
  std::vector<uint32_t> C = RunOnce(1);
  EXPECT_NE(A, C); // And input-sensitive.
}

TEST(DynamicValidation, TimersFollowTheCounter) {
  Module M = assembleCorpus("StartTimer");
  Interpreter I(M);
  I.mapRegion(0x2000, 12); // counter {count, active, overflow}
  int Started = 0;
  I.registerHost("DYNINSTstartWallTimer",
                 [&Started](Interpreter &) { ++Started; });
  I.setReg(O0, 0x2000);
  I.setReg(O1, 0x3000); // Opaque timer handle.
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(Started, 1);           // 0 -> 1 starts the timer.
  EXPECT_EQ(I.read32(0x2000), 1u); // count incremented.

  // Second invocation: count 1 -> 2, no start.
  Interpreter I2(M);
  I2.mapRegion(0x2000, 12);
  I2.write32(0x2000, 1);
  int Started2 = 0;
  I2.registerHost("DYNINSTstartWallTimer",
                  [&Started2](Interpreter &) { ++Started2; });
  I2.setReg(O0, 0x2000);
  I2.setReg(O1, 0x3000);
  ASSERT_EQ(I2.run().Reason, StopReason::Returned);
  EXPECT_EQ(Started2, 0);
  EXPECT_EQ(I2.read32(0x2000), 2u);
}

TEST(DynamicValidation, HashFindsValueInChain) {
  Module M = assembleCorpus("Hash");
  Interpreter I(M);
  // Two entries chained in bucket 2 of a 4-bucket table.
  I.mapRegion(0x5000, 16); // buckets
  I.mapRegion(0x6000, 24); // entries
  I.write32(0x5000 + 8, 0x6000);
  I.write32(0x6000 + 0, 77);     // e0.key
  I.write32(0x6000 + 4, 123);    // e0.val
  I.write32(0x6000 + 8, 0x600C); // e0.next
  I.write32(0x600C + 0, 42);     // e1.key
  I.write32(0x600C + 4, 999);    // e1.val
  I.write32(0x600C + 8, 0);
  I.registerHost("hash_index", [](Interpreter &It) {
    It.setReg(O0, It.reg(O0) % 4);
  });
  I.setReg(O0, 42); // key 42 hashes to bucket 2.
  I.setReg(O1, 0x5000);
  I.setReg(O2, 4);
  ASSERT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O0), 999u);

  // A missing key returns 0.
  Interpreter I2(M);
  I2.mapRegion(0x5000, 16);
  I2.registerHost("hash_index", [](Interpreter &It) {
    It.setReg(O0, It.reg(O0) % 4);
  });
  I2.setReg(O0, 5);
  I2.setReg(O1, 0x5000);
  I2.setReg(O2, 4);
  ASSERT_EQ(I2.run().Reason, StopReason::Returned);
  EXPECT_EQ(I2.reg(O0), 0u);
}

//===----------------------------------------------------------------------===//
// Delay-slot / annul cross-validation.
//
// The interpreter implements delayed branches operationally (the PC/nPC
// pair); the CFG implements them structurally (the delay instruction is
// replicated onto exactly the edges on which it executes, the paper's
// Figure 8 device). The two encodings must describe the same set of
// executions: every concrete single-stepped trace must be a path of the
// CFG, and the traces a divergence would produce must NOT be.
//===----------------------------------------------------------------------===//

Module assembleSource(const char *Source) {
  std::string Error;
  std::optional<Module> M = assemble(Source, &Error);
  EXPECT_TRUE(M.has_value()) << Error;
  return std::move(*M);
}

cfg::Cfg buildCfg(const Module &M) {
  DiagnosticEngine Diags;
  std::optional<cfg::Cfg> G = cfg::Cfg::build(M, Diags);
  EXPECT_TRUE(G.has_value()) << Diags.str();
  return std::move(*G);
}

/// Single-steps \p I to completion, recording the module index of every
/// instruction that actually executed (pseudo-PCs — host trampoline,
/// returned-to-host — are not instructions and are skipped).
Interpreter::Result runTraced(Interpreter &I, const Module &M,
                              std::vector<uint32_t> &Trace) {
  for (int Fuel = 0; Fuel < 100000; ++Fuel) {
    uint32_t Pc = I.pc();
    Interpreter::Result R = I.run(1);
    if (R.Reason != StopReason::StepLimit)
      return R; // Stopped before executing another instruction.
    if (Pc < M.size())
      Trace.push_back(Pc);
  }
  ADD_FAILURE() << "trace did not terminate";
  return Interpreter::Result{};
}

/// Whether \p Trace is a complete entry-to-exit path of \p G: each
/// executed instruction index must be matched by a CFG node reachable
/// from the previous step's candidates, and the final step must flow
/// into the synthetic exit. Delay-slot clones share the InstIndex of
/// their original, so a candidate *set* tracks the ambiguity.
bool cfgAcceptsTrace(const cfg::Cfg &G, const std::vector<uint32_t> &Trace) {
  if (Trace.empty())
    return false;
  std::set<cfg::NodeId> Cur;
  if (G.node(G.entry()).InstIndex == Trace[0])
    Cur.insert(G.entry());
  for (size_t K = 1; K < Trace.size() && !Cur.empty(); ++K) {
    std::set<cfg::NodeId> Next;
    for (cfg::NodeId N : Cur)
      for (const cfg::CfgEdge &E : G.node(N).Succs)
        if (G.node(E.To).InstIndex == Trace[K])
          Next.insert(E.To);
    Cur = std::move(Next);
  }
  for (cfg::NodeId N : Cur)
    for (const cfg::CfgEdge &E : G.node(N).Succs)
      if (G.node(E.To).Kind == cfg::NodeKind::Exit)
        return true;
  return false;
}

TEST(DelaySlotCrossValidation, UntakenAnnulledBranchSkipsDelay) {
  // Interpreter.cpp's untaken-annulled path: bne,a with the condition
  // false must skip the delay instruction; the CFG models this with a
  // NotTaken edge that bypasses the delay clone.
  Module M = assembleSource(R"(
  cmp %g0,0
  bne,a target
  mov 9,%o1      ! annulled and untaken: must not execute
  mov 2,%o2
target:
  retl
  nop
)");
  Interpreter I(M);
  std::vector<uint32_t> Trace;
  ASSERT_EQ(runTraced(I, M, Trace).Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 0u); // The delay slot really was annulled.
  EXPECT_EQ(I.reg(O2), 2u); // The fall-through path really ran.
  EXPECT_EQ(Trace, (std::vector<uint32_t>{0, 1, 3, 4, 5}));

  cfg::Cfg G = buildCfg(M);
  EXPECT_TRUE(cfgAcceptsTrace(G, Trace));
  // The trace a non-annulling interpreter would produce (delay slot
  // executed on the untaken path) must be structurally impossible.
  EXPECT_FALSE(cfgAcceptsTrace(G, {0, 1, 2, 3, 4, 5}));
}

TEST(DelaySlotCrossValidation, TakenAnnulledBranchExecutesDelay) {
  // be,a with the condition true: annul only cancels the delay slot on
  // the UNTAKEN path, so here the delay instruction must execute.
  Module M = assembleSource(R"(
  cmp %g0,0
  be,a target
  mov 9,%o1      ! taken-annulled: executes
  mov 2,%o2      ! skipped by the branch
target:
  retl
  nop
)");
  Interpreter I(M);
  std::vector<uint32_t> Trace;
  ASSERT_EQ(runTraced(I, M, Trace).Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 9u);
  EXPECT_EQ(I.reg(O2), 0u);
  EXPECT_EQ(Trace, (std::vector<uint32_t>{0, 1, 2, 4, 5}));

  cfg::Cfg G = buildCfg(M);
  EXPECT_TRUE(cfgAcceptsTrace(G, Trace));
  // Branching while skipping the delay slot is not a CFG path.
  EXPECT_FALSE(cfgAcceptsTrace(G, {0, 1, 4, 5}));
}

TEST(DelaySlotCrossValidation, BranchAlwaysWithAnnulSkipsDelayEntirely) {
  // ba,a is the one case where a TAKEN branch annuls its delay slot.
  Module M = assembleSource(R"(
  ba,a target
  mov 9,%o1      ! never executes
  mov 2,%o2      ! unreachable
target:
  retl
  nop
)");
  Interpreter I(M);
  std::vector<uint32_t> Trace;
  ASSERT_EQ(runTraced(I, M, Trace).Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 0u);
  EXPECT_EQ(I.reg(O2), 0u);
  EXPECT_EQ(Trace, (std::vector<uint32_t>{0, 3, 4}));

  cfg::Cfg G = buildCfg(M);
  EXPECT_TRUE(cfgAcceptsTrace(G, Trace));
  EXPECT_FALSE(cfgAcceptsTrace(G, {0, 1, 3, 4})); // Delay must not run.
}

TEST(DelaySlotCrossValidation, BranchAlwaysWithoutAnnulExecutesDelay) {
  Module M = assembleSource(R"(
  ba target
  mov 9,%o1      ! delay slot: executes before the jump
  mov 2,%o2      ! unreachable
target:
  retl
  nop
)");
  Interpreter I(M);
  std::vector<uint32_t> Trace;
  ASSERT_EQ(runTraced(I, M, Trace).Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 9u);
  EXPECT_EQ(I.reg(O2), 0u);
  EXPECT_EQ(Trace, (std::vector<uint32_t>{0, 1, 3, 4}));

  cfg::Cfg G = buildCfg(M);
  EXPECT_TRUE(cfgAcceptsTrace(G, Trace));
  EXPECT_FALSE(cfgAcceptsTrace(G, {0, 3, 4}));       // Delay required.
  EXPECT_FALSE(cfgAcceptsTrace(G, {0, 1, 2, 3, 4})); // No fall-through.
}

TEST(DelaySlotCrossValidation, BranchNeverWithAnnulSkipsDelay) {
  // bn,a: never taken, so annul cancels the delay slot — the instruction
  // pair acts as a two-word skip.
  Module M = assembleSource(R"(
  bn,a target
  mov 9,%o1      ! annulled: skipped
  mov 2,%o2
target:
  retl
  nop
)");
  Interpreter I(M);
  std::vector<uint32_t> Trace;
  ASSERT_EQ(runTraced(I, M, Trace).Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 0u);
  EXPECT_EQ(I.reg(O2), 2u);
  EXPECT_EQ(Trace, (std::vector<uint32_t>{0, 2, 3, 4}));

  cfg::Cfg G = buildCfg(M);
  EXPECT_TRUE(cfgAcceptsTrace(G, Trace));
  EXPECT_FALSE(cfgAcceptsTrace(G, {0, 1, 2, 3, 4}));
}

TEST(DelaySlotCrossValidation, BranchNeverWithoutAnnulExecutesDelay) {
  Module M = assembleSource(R"(
  bn target
  mov 9,%o1      ! delay slot of the untaken bn: executes
  mov 2,%o2
target:
  retl
  nop
)");
  Interpreter I(M);
  std::vector<uint32_t> Trace;
  ASSERT_EQ(runTraced(I, M, Trace).Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 9u);
  EXPECT_EQ(I.reg(O2), 2u);
  EXPECT_EQ(Trace, (std::vector<uint32_t>{0, 1, 2, 3, 4}));

  cfg::Cfg G = buildCfg(M);
  EXPECT_TRUE(cfgAcceptsTrace(G, Trace));
  EXPECT_FALSE(cfgAcceptsTrace(G, {0, 2, 3, 4}));
}

TEST(DelaySlotCrossValidation, UntakenPlainBranchExecutesDelay) {
  // The non-annulled counterpart of the first test: the delay slot runs
  // on BOTH paths, which the CFG models by cloning it onto both edges.
  Module M = assembleSource(R"(
  cmp %g0,0
  bne target
  mov 9,%o1      ! executes even though the branch is untaken
  mov 2,%o2
target:
  retl
  nop
)");
  Interpreter I(M);
  std::vector<uint32_t> Trace;
  ASSERT_EQ(runTraced(I, M, Trace).Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 9u);
  EXPECT_EQ(I.reg(O2), 2u);
  EXPECT_EQ(Trace, (std::vector<uint32_t>{0, 1, 2, 3, 4, 5}));

  cfg::Cfg G = buildCfg(M);
  EXPECT_TRUE(cfgAcceptsTrace(G, Trace));
  EXPECT_FALSE(cfgAcceptsTrace(G, {0, 1, 3, 4, 5})); // Delay required.
}

TEST(DelaySlotCrossValidation, CorpusTracesAreCfgPaths) {
  // The same cross-check over real corpus executions: Sum's loop (a
  // taken-annulled bl with the increment in the delay slot) must walk
  // the CFG's replicated delay nodes, iteration after iteration.
  Module M = assembleCorpus("Sum");
  Interpreter I(M);
  writeArray(I, 0x1000, {3, 1, 4, 1, 5});
  I.setReg(O0, 0x1000);
  I.setReg(O1, 5);
  std::vector<uint32_t> Trace;
  ASSERT_EQ(runTraced(I, M, Trace).Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O0), 14u);
  EXPECT_TRUE(cfgAcceptsTrace(buildCfg(M), Trace));
}

} // namespace
