//===- MalformedCorpusTest.cpp --------------------------------------------===//
//
// Adversarial inputs: every malformed program or policy must produce a
// structured MalformedInput rejection — a verdict, a diagnostic, and a
// CheckFailure — never a crash, an abort, or an uncaught exception. The
// batch report for the whole adversarial set must be byte-identical for
// any worker count.
//
//===----------------------------------------------------------------------===//

#include "checker/ParallelCheck.h"
#include "checker/SafetyChecker.h"
#include "sparc/Encoding.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

/// A minimal well-formed policy for cases where only the assembly is
/// malformed.
const char *OkPolicy = R"(
loc e : int32 state=init
invoke %o0 = e
)";

/// A minimal well-formed program for cases where only the policy is
/// malformed.
const char *OkAsm = "  retl\n  nop\n";

struct Adversarial {
  const char *Name;
  const char *Asm;
  const char *Policy;
};

// ~20 adversarial inputs, covering the assembler, the decoder-adjacent
// target validation, the CFG builder, and the policy parser (including
// the hardening for overflow, duplicate bindings, and dotted paths).
const Adversarial Cases[] = {
    // -- malformed assembly --
    {"unknown-mnemonic", "  frobnicate %o0, %o1\n", OkPolicy},
    {"truncated-operands", "  add %o0,\n  retl\n  nop\n", OkPolicy},
    {"bad-register", "  add %z9, %o1, %o2\n  retl\n  nop\n", OkPolicy},
    {"undefined-label", "  ba missing\n  nop\n  retl\n  nop\n", OkPolicy},
    {"branch-past-end", "  ba 99\n  nop\n  retl\n  nop\n", OkPolicy},
    {"immediate-overflow", "  add %o0, 999999, %o1\n  retl\n  nop\n",
     OkPolicy},
    {"garbage-bytes", "\x01\x02\x7f\xff garbage \xfe\n", OkPolicy},
    {"empty-program", "", OkPolicy},
    // -- malformed control flow --
    {"branch-in-delay-slot",
     "  ba 2\n  ba 4\n  retl\n  nop\n  retl\n  nop\n", OkPolicy},
    {"fallthrough-off-end", "  cmp %o0, 0\n  bne 0\n  nop\n", OkPolicy},
    // -- malformed policy: syntax --
    {"unknown-directive", OkAsm, "frobnicate everything\n"},
    {"unbalanced-brace", OkAsm, "struct S { f : int32 @ 0\n"},
    {"unknown-type", OkAsm, "loc e : no_such_type\n"},
    {"trailing-garbage", OkAsm,
     "loc e : int32 state=init\nregion V { e } surprise\n"},
    {"unknown-permission", OkAsm,
     "loc e : int32 state=init\nregion V { e }\nallow V : int32 : r,q\n"},
    // -- malformed policy: hardened validation --
    {"integer-overflow", OkAsm,
     "loc e : int32 state=init(99999999999999999999)\n"},
    {"struct-offset-wraps", OkAsm,
     "struct S { f : int32 @ 4294967296 }\nloc s : S\n"},
    {"duplicate-location", OkAsm,
     "loc e : int32 state=init\nloc e : int32 state=init\n"},
    {"duplicate-invoke-register", OkAsm,
     "loc e : int32 state=init\ninvoke %o0 = e\ninvoke %o0 = 4\n"},
    {"invalid-invoke-register", OkAsm, "invoke %q7 = 4\n"},
    {"region-undeclared-location", OkAsm,
     "loc e : int32 state=init\nregion V { ghost }\n"},
    {"points-to-undeclared", OkAsm, "loc p : int32* state={ghost}\n"},
    {"dotted-path-bogus-field", OkAsm,
     "struct S { f : int32 @ 0 }\nloc s : S\nregion V { s.ghost }\n"},
};

std::vector<CheckJob> adversarialJobs() {
  std::vector<CheckJob> Jobs;
  for (const Adversarial &A : Cases)
    Jobs.push_back({A.Name, A.Asm, A.Policy});
  return Jobs;
}

TEST(MalformedCorpus, EveryInputIsStructurallyRejected) {
  for (const Adversarial &A : Cases) {
    SafetyChecker Checker;
    CheckReport R = Checker.checkSource(A.Asm, A.Policy);
    EXPECT_EQ(R.Verdict, CheckVerdict::MalformedInput) << A.Name;
    EXPECT_FALSE(R.InputsOk) << A.Name;
    EXPECT_FALSE(R.Safe) << A.Name;
    EXPECT_FALSE(R.Failures.empty()) << A.Name;
    EXPECT_EQ(exitCode(R.Verdict), 2) << A.Name;
  }
}

TEST(MalformedCorpus, DottedPathToRealFieldIsAccepted) {
  // The hardened dotted-path validation must not over-reject: a path
  // through a declared member is fine.
  SafetyChecker Checker;
  CheckReport R = Checker.checkSource(
      OkAsm, "struct S { f : int32 @ 0 }\nloc s : S\nregion V { s.f }\n");
  EXPECT_NE(R.Verdict, CheckVerdict::MalformedInput) << R.Diags.str();
}

TEST(MalformedCorpus, BatchReportIsByteIdenticalAcrossJobCounts) {
  auto Render = [](unsigned Jobs) {
    ParallelCheckOptions Opts;
    Opts.Jobs = Jobs;
    return renderParallelReport(checkJobs(adversarialJobs(), Opts));
  };
  std::string One = Render(1);
  EXPECT_NE(One.find("MALFORMED-INPUT"), std::string::npos);
  EXPECT_EQ(One, Render(4));
  EXPECT_EQ(One, Render(8));
}

TEST(MalformedCorpus, DecoderRejectsBranchBeforeModuleStart) {
  // A Bicc word whose sign-extended 22-bit displacement lands before
  // instruction 0. Letting it through would hand the CFG builder an
  // unresolvable negative target (formerly an assert).
  uint32_t BranchMinusOne =
      (0x8u << 25) | (0x2u << 22) | 0x3FFFFFu; // ba . -1 at index 0
  EXPECT_FALSE(sparc::decodeModule({BranchMinusOne}).has_value());

  uint32_t BranchMinusFour = (0x9u << 25) | (0x2u << 22) |
                             (static_cast<uint32_t>(-4) & 0x3FFFFFu);
  EXPECT_FALSE(
      sparc::decodeModule({0x01000000u /* nop */, BranchMinusFour})
          .has_value());
}

TEST(MalformedCorpus, DecoderStillAcceptsExternalCalls) {
  // A CALL with a negative displacement is an external callee resolved
  // by name — that stays legal.
  uint32_t CallMinusOne = (0x1u << 30) | (0x3FFFFFFFu); // call . -1
  EXPECT_TRUE(sparc::decodeModule({CallMinusOne}).has_value());
}

TEST(MalformedCorpus, DecoderRejectsBranchPastModuleEnd) {
  uint32_t BranchPlusEight = (0x8u << 25) | (0x2u << 22) | 8u;
  EXPECT_FALSE(sparc::decodeModule({BranchPlusEight}).has_value());
}

} // namespace
