//===- ParallelDeterminismTest.cpp ----------------------------------------===//
//
// The parallel verification engine's central contract: verdicts and
// diagnostics over the full corpus are byte-identical for any job count.
//
//===----------------------------------------------------------------------===//

#include "checker/ParallelCheck.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

std::vector<CheckJob> corpusJobs() {
  std::vector<CheckJob> Jobs;
  for (const corpus::CorpusProgram &P : corpus::corpus())
    Jobs.push_back({P.Name, P.Asm, P.Policy});
  return Jobs;
}

std::string runCorpus(unsigned Jobs) {
  ParallelCheckOptions Opts;
  Opts.Jobs = Jobs;
  return renderParallelReport(checkJobs(corpusJobs(), Opts));
}

TEST(ParallelDeterminism, ReportsIdenticalAcrossJobCounts) {
  std::string Serial = runCorpus(1);
  ASSERT_FALSE(Serial.empty());
  // The serial baseline must carry every program, its verdict, and the
  // deterministic work counters (the report is compared in full — no
  // timing fields exist to strip).
  for (const corpus::CorpusProgram &P : corpus::corpus()) {
    EXPECT_NE(Serial.find("== " + P.Name + " =="), std::string::npos);
    EXPECT_NE(
        Serial.find(P.ExpectSafe ? "verdict: SAFE" : "verdict: UNSAFE"),
        std::string::npos);
  }
  EXPECT_NE(Serial.find("typestate visits: "), std::string::npos);
  EXPECT_NE(Serial.find("prover: validity "), std::string::npos);
  // Full report bytes must agree for every job count.
  for (unsigned Jobs : {2u, 4u, 8u})
    EXPECT_EQ(Serial, runCorpus(Jobs)) << "--jobs " << Jobs;
}

TEST(ParallelDeterminism, RepeatedParallelRunsAgree) {
  // Two 8-job runs see different schedules and different shared-cache
  // warm-up; the reports must not.
  EXPECT_EQ(runCorpus(8), runCorpus(8));
}

TEST(ParallelDeterminism, VerdictsMatchExpectations) {
  ParallelCheckOptions Opts;
  Opts.Jobs = 4;
  ParallelCheckResult R = checkJobs(corpusJobs(), Opts);
  ASSERT_EQ(R.Programs.size(), corpus::corpus().size());
  for (size_t I = 0; I < R.Programs.size(); ++I) {
    const corpus::CorpusProgram &P = corpus::corpus()[I];
    EXPECT_EQ(R.Programs[I].Name, P.Name); // Input order preserved.
    EXPECT_TRUE(R.Programs[I].Report.InputsOk) << P.Name;
    EXPECT_EQ(R.Programs[I].Report.Safe, P.ExpectSafe) << P.Name;
  }
}

TEST(ParallelDeterminism, PrivateCachesAndNoVcParallelismAgreeToo) {
  // The engine's knobs must not change verdicts either.
  ParallelCheckOptions A;
  A.Jobs = 1;
  ParallelCheckOptions B;
  B.Jobs = 8;
  B.ShareProverCache = false;
  B.VcParallelism = false;
  EXPECT_EQ(renderParallelReport(checkJobs(corpusJobs(), A)),
            renderParallelReport(checkJobs(corpusJobs(), B)));
}

} // namespace
