//===- RecheckDeterminismTest.cpp -----------------------------------------===//
//
// The certificate store's end-to-end contract over the corpus: a warm
// recheck (every certificate hits and revalidates) renders a report
// byte-identical to the cold run that wrote the store — and both are
// byte-identical to a run with no store at all, for every job count.
// Incremental re-verification must be invisible in the output.
//
//===----------------------------------------------------------------------===//

#include "checker/CertStore.h"
#include "checker/ParallelCheck.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

std::vector<CheckJob> corpusJobs() {
  std::vector<CheckJob> Jobs;
  for (const corpus::CorpusProgram &P : corpus::corpus())
    Jobs.push_back({P.Name, P.Asm, P.Policy});
  return Jobs;
}

std::string runCorpus(unsigned Jobs, CertStore *Store,
                      bool Slicing = true) {
  ParallelCheckOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Check.Certs = Store;
  Opts.Check.ProverOpts.EnableSlicing = Slicing;
  return renderParallelReport(checkJobs(corpusJobs(), Opts));
}

struct TempDir {
  std::string Dir;
  explicit TempDir(const char *Tag) {
    Dir = (std::filesystem::temp_directory_path() /
           (std::string("mcsafe-recheck-") + Tag + "-" +
            std::to_string(::getpid())))
              .string();
    std::filesystem::remove_all(Dir);
  }
  ~TempDir() { std::filesystem::remove_all(Dir); }
};

TEST(RecheckDeterminism, WarmAndColdReportsAreByteIdentical) {
  std::string NoStore = runCorpus(4, nullptr);
  ASSERT_FALSE(NoStore.empty());

  TempDir T("bytes");
  CertStore Store(T.Dir);
  std::string Cold = runCorpus(4, &Store);
  EXPECT_EQ(NoStore, Cold); // The store must not perturb a cold run.
  EXPECT_EQ(Store.stats().Misses, corpus::corpus().size());
  EXPECT_EQ(Store.stats().Writes, corpus::corpus().size());

  std::string Warm = runCorpus(4, &Store);
  EXPECT_EQ(Store.stats().Hits, corpus::corpus().size());
  EXPECT_EQ(Store.stats().RevalidateFailed, 0u);
  EXPECT_EQ(Cold, Warm);
}

TEST(RecheckDeterminism, WarmReportsAgreeAcrossJobCounts) {
  TempDir T("jobs");
  CertStore Store(T.Dir);
  std::string Cold = runCorpus(1, &Store);
  for (unsigned Jobs : {1u, 2u, 4u, 8u})
    EXPECT_EQ(Cold, runCorpus(Jobs, &Store)) << "--jobs " << Jobs;
  // 1 cold pass + 4 warm passes, all over the full corpus.
  EXPECT_EQ(Store.stats().Hits, 4 * corpus::corpus().size());
}

TEST(RecheckDeterminism, MixedWarmColdBatchesStayDeterministic) {
  // A store populated for only part of the corpus: the recheck runs
  // some programs warm and some cold in the same batch, which must
  // still render the byte-identical report.
  std::string Baseline = runCorpus(4, nullptr);

  TempDir T("mixed");
  CertStore Store(T.Dir);
  {
    // Populate certificates for the first half of the corpus only.
    std::vector<CheckJob> Half = corpusJobs();
    Half.resize(Half.size() / 2);
    ParallelCheckOptions Opts;
    Opts.Jobs = 4;
    Opts.Check.Certs = &Store;
    checkJobs(Half, Opts);
  }
  uint64_t Pre = Store.stats().Writes;
  EXPECT_EQ(runCorpus(4, &Store), Baseline);
  EXPECT_EQ(Store.stats().Hits, corpus::corpus().size() / 2);
  EXPECT_EQ(Store.stats().Writes - Pre,
            corpus::corpus().size() - corpus::corpus().size() / 2);
}

TEST(RecheckDeterminism, CertificatesPortAcrossSlicingConfigs) {
  // Query slicing is a prover-internal strategy, deliberately excluded
  // from the certificate's check configuration: a store written with
  // slicing off must revalidate warm — and render byte-identically —
  // under a sliced prover, and vice versa. (Unsat witnesses are always
  // re-discharged live, so a hit certifies the verdict either way.)
  std::string Baseline = runCorpus(4, nullptr, /*Slicing=*/true);
  ASSERT_EQ(Baseline, runCorpus(4, nullptr, /*Slicing=*/false));

  {
    TempDir T("slice-off-on");
    CertStore Store(T.Dir);
    ASSERT_EQ(runCorpus(4, &Store, /*Slicing=*/false), Baseline);
    EXPECT_EQ(runCorpus(4, &Store, /*Slicing=*/true), Baseline);
    EXPECT_EQ(Store.stats().Hits, corpus::corpus().size());
    EXPECT_EQ(Store.stats().RevalidateFailed, 0u);
  }
  {
    TempDir T("slice-on-off");
    CertStore Store(T.Dir);
    ASSERT_EQ(runCorpus(4, &Store, /*Slicing=*/true), Baseline);
    EXPECT_EQ(runCorpus(4, &Store, /*Slicing=*/false), Baseline);
    EXPECT_EQ(Store.stats().Hits, corpus::corpus().size());
    EXPECT_EQ(Store.stats().RevalidateFailed, 0u);
  }
}

} // namespace
