//===- RoundTripTest.cpp - Binary round trips over the corpus -------------===//
//
// The checker's philosophy is that it consumes "the final product of the
// compiler": corpus programs with no external callees are encoded to raw
// SPARC machine words, decoded back, and re-checked — the verdict must
// be identical to checking the assembled text.
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"
#include "sparc/Encoding.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

/// Programs whose calls are all local (external calls need relocations
/// we deliberately do not model).
class BinaryRoundTrip : public ::testing::TestWithParam<const char *> {};

TEST_P(BinaryRoundTrip, DecodedBinaryChecksIdentically) {
  const CorpusProgram &P = corpusProgram(GetParam());
  std::string Error;
  std::optional<sparc::Module> M = sparc::assemble(P.Asm, &Error);
  ASSERT_TRUE(M.has_value()) << Error;

  std::optional<std::vector<uint32_t>> Words = sparc::encodeModule(*M);
  ASSERT_TRUE(Words.has_value()) << "encoding failed for " << P.Name;
  EXPECT_EQ(Words->size(), M->size());

  std::optional<sparc::Module> Decoded = sparc::decodeModule(*Words);
  ASSERT_TRUE(Decoded.has_value());
  ASSERT_EQ(Decoded->size(), M->size());
  for (uint32_t I = 0; I < M->size(); ++I)
    EXPECT_EQ(Decoded->Insts[I].str(), M->Insts[I].str())
        << P.Name << " index " << I;

  std::optional<policy::Policy> Pol = policy::parsePolicy(P.Policy, &Error);
  ASSERT_TRUE(Pol.has_value()) << Error;

  SafetyChecker Checker;
  CheckReport FromText = Checker.checkSource(P.Asm, P.Policy);
  CheckReport FromBinary = Checker.check(*Decoded, *Pol);
  ASSERT_TRUE(FromBinary.InputsOk) << FromBinary.Diags.str();
  EXPECT_EQ(FromBinary.Safe, FromText.Safe);
  EXPECT_EQ(FromBinary.Safe, P.ExpectSafe);
  EXPECT_EQ(FromBinary.Chars.GlobalConditions,
            FromText.Chars.GlobalConditions);
}

INSTANTIATE_TEST_SUITE_P(
    LocalOnlyCorpus, BinaryRoundTrip,
    ::testing::Values("Sum", "PagingPolicy", "BubbleSort", "Btree",
                      "Btree2", "HeapSort2", "HeapSort", "MD5"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

} // namespace
