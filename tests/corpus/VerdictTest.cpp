//===- VerdictTest.cpp - Section 6 verdicts over the Figure 9 corpus ------===//
//
// "In our experiments, we were able to find a safety violation in the
// example that implements a page-replacement policy ... and we identified
// all array out-of-bounds violations in the stack-smashing example."
// Everything else verifies (jPVM modulo the documented summarization
// false positive).
//
//===----------------------------------------------------------------------===//

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;

namespace {

class CorpusVerdict : public ::testing::TestWithParam<const char *> {};

TEST_P(CorpusVerdict, MatchesExpectedOutcome) {
  const CorpusProgram &P = corpusProgram(GetParam());
  SafetyChecker Checker;
  CheckReport Report = Checker.checkSource(P.Asm, P.Policy);
  ASSERT_TRUE(Report.InputsOk) << Report.Diags.str();
  EXPECT_EQ(Report.Safe, P.ExpectSafe) << Report.Diags.str();
  for (const auto &[Kind, MinCount] : P.ExpectedViolations) {
    EXPECT_GE(Report.Diags.countOfKind(Kind), MinCount)
        << "missing expected " << safetyKindName(Kind)
        << " violations:\n"
        << Report.Diags.str();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Figure9, CorpusVerdict,
    ::testing::Values("Sum", "PagingPolicy", "StartTimer", "Hash",
                      "BubbleSort", "StopTimer", "Btree", "Btree2",
                      "HeapSort2", "HeapSort", "jPVM", "StackSmashing",
                      "MD5"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      return std::string(Info.param);
    });

} // namespace
