//===- PolicyParserTest.cpp -----------------------------------------------===//

#include "policy/PolicyParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::policy;
using namespace mcsafe::typestate;

namespace {

/// The paper's Figure 1 policy.
const char *SumPolicy = R"(
# Summing the elements of an integer array.
loc e : int32 state=init summary
loc arr : int32[n] state={e}
region V { arr, e }
allow V : int32 : r,o
allow V : int32[n] : r,f,o
invoke %o0 = arr
invoke %o1 = n
constraint n >= 1
)";

TEST(PolicyParser, Figure1PolicyParses) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(SumPolicy, &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  ASSERT_EQ(P->Locations.size(), 2u);
  EXPECT_EQ(P->Locations[0].Name, "e");
  EXPECT_TRUE(P->Locations[0].Summary);
  EXPECT_EQ(P->Locations[0].State.K, StateSpec::Kind::Init);
  EXPECT_EQ(P->Locations[1].Name, "arr");
  EXPECT_EQ(P->Locations[1].Type->kind(), TypeKind::ArrayBase);
  EXPECT_TRUE(P->Locations[1].Type->arraySize().Symbolic);
  ASSERT_EQ(P->Locations[1].State.Targets.size(), 1u);
  EXPECT_EQ(P->Locations[1].State.Targets[0].first, "e");

  ASSERT_EQ(P->Regions.count("V"), 1u);
  EXPECT_EQ(P->Regions["V"].size(), 2u);
  ASSERT_EQ(P->Rules.size(), 2u);
  EXPECT_TRUE(P->Rules[0].R);
  EXPECT_FALSE(P->Rules[0].W);
  EXPECT_TRUE(P->Rules[0].O);
  EXPECT_TRUE(P->Rules[1].F);

  ASSERT_EQ(P->Invocation.size(), 2u);
  EXPECT_EQ(P->Invocation[0].Reg, sparc::O0);
  EXPECT_EQ(P->Invocation[0].K, InvocationBinding::Kind::ValueOfLoc);
  EXPECT_EQ(P->Invocation[1].K, InvocationBinding::Kind::Symbol);
  ASSERT_EQ(P->Constraints.size(), 1u);
  // n >= 1, i.e. n - 1 >= 0.
  EXPECT_EQ(P->Constraints[0]->kind(), FormulaKind::Atom);
}

TEST(PolicyParser, StructWithRecursivePointer) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
struct thread { tid: int32 @0; lwpid: int32 @4; next: thread* @8 } size 12 align 4
loc t0 : thread state=init
loc head : thread* state={t0}
region H { t0, head }
allow H : thread.tid : r,o
allow H : thread.lwpid : r,o
allow H : thread.next : r,f,o
invoke %o0 = head
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  ASSERT_EQ(P->NamedTypes.count("thread"), 1u);
  TypeRef Thread = P->NamedTypes["thread"];
  EXPECT_EQ(Thread->kind(), TypeKind::Struct);
  ASSERT_EQ(Thread->members().size(), 3u);
  EXPECT_EQ(Thread->members()[2].Label, "next");
  EXPECT_EQ(Thread->members()[2].Type->kind(), TypeKind::Ptr);
  EXPECT_TRUE(typeEquals(Thread->members()[2].Type->pointee(), Thread));
  EXPECT_EQ(Thread->sizeInBytes(), 12u);

  // Field-category rules.
  ASSERT_EQ(P->Rules.size(), 3u);
  EXPECT_EQ(P->Rules[2].StructName, "thread");
  EXPECT_EQ(P->Rules[2].FieldName, "next");
}

TEST(PolicyParser, EmbeddedArrayField) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
struct frame { pad: int32 @0 x 16; buf: int32 @64 x 8 } size 96 align 8
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  TypeRef F = P->NamedTypes["frame"];
  ASSERT_EQ(F->members().size(), 2u);
  EXPECT_EQ(F->members()[0].Count, 16u);
  EXPECT_EQ(F->members()[1].Offset, 64u);
  EXPECT_EQ(F->members()[1].Count, 8u);
}

TEST(PolicyParser, TrustedSummary) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
abstract timer size 16 align 8
loc tmr : timer
trusted DYNINSTstartWallTimer {
  param %o0 : timer* state={tmr} access=f,o
  pre %o0 > 0
  returns void
  writes tmr
}
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  const TrustedSummary *S = P->findTrusted("DYNINSTstartWallTimer");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Params.size(), 1u);
  EXPECT_EQ(S->Params[0].Reg, sparc::O0);
  EXPECT_TRUE(S->Params[0].Access.F);
  EXPECT_TRUE(S->Params[0].Access.O);
  EXPECT_FALSE(S->Params[0].Access.X);
  EXPECT_FALSE(S->Pre->isTrue()); // %o0 > 0 recorded.
  EXPECT_EQ(S->ReturnType, nullptr);
  ASSERT_EQ(S->Writes.size(), 1u);
  EXPECT_EQ(S->Writes[0], "tmr");
}

TEST(PolicyParser, ConstraintForms) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
constraint n >= 1
constraint n = %o1
constraint 2*n - 3 < m + 4
constraint 4 | %o0
constraint k != 0
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  ASSERT_EQ(P->Constraints.size(), 5u);
  EXPECT_EQ(P->Constraints[3]->constraint().kind(), ConstraintKind::DIV);
  // != parses into a disjunction of strict inequalities.
  EXPECT_EQ(P->Constraints[4]->kind(), FormulaKind::Or);
}

TEST(PolicyParser, InvokeForms) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
loc buf : int32 state=uninit
invoke %o0 = &buf
invoke %o1 = &buf+8
invoke %o2 = 42
invoke %o3 = -7
invoke %o4 = size
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  ASSERT_EQ(P->Invocation.size(), 5u);
  EXPECT_EQ(P->Invocation[0].K, InvocationBinding::Kind::AddressOfLoc);
  EXPECT_EQ(P->Invocation[1].Offset, 8);
  EXPECT_EQ(P->Invocation[2].K, InvocationBinding::Kind::Literal);
  EXPECT_EQ(P->Invocation[2].Literal, 42);
  EXPECT_EQ(P->Invocation[3].Literal, -7);
  EXPECT_EQ(P->Invocation[4].K, InvocationBinding::Kind::Symbol);
}

TEST(PolicyParser, FrameDirective) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
struct f { slot: int32 @0 } size 96 align 8
frame md5body : f
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  EXPECT_EQ(P->FrameTypes["md5body"], "f");
}

TEST(PolicyParser, Errors) {
  std::string Error;
  EXPECT_FALSE(parsePolicy("loc x : nosuchtype\n", &Error).has_value());
  EXPECT_NE(Error.find("unknown type"), std::string::npos);

  EXPECT_FALSE(parsePolicy("bogus directive\n", &Error).has_value());
  EXPECT_NE(Error.find("unknown directive"), std::string::npos);

  EXPECT_FALSE(parsePolicy("region R { ghost }\n", &Error).has_value());
  EXPECT_NE(Error.find("undeclared"), std::string::npos);

  EXPECT_FALSE(
      parsePolicy("loc p : int32 state={ghost}\n", &Error).has_value());
  EXPECT_NE(Error.find("undeclared"), std::string::npos);

  EXPECT_FALSE(parsePolicy("invoke %o0 = &ghost\n", &Error).has_value());
  EXPECT_NE(Error.find("undeclared"), std::string::npos);

  EXPECT_FALSE(parsePolicy("trusted f { param %o0 : int32\n", &Error)
                   .has_value());
  EXPECT_NE(Error.find("unterminated"), std::string::npos);

  EXPECT_FALSE(parsePolicy("frame g : nosuch\n", &Error).has_value());
  EXPECT_NE(Error.find("unknown frame type"), std::string::npos);
}

TEST(PolicyParser, ErrorsCarryLineNumbers) {
  std::string Error;
  EXPECT_FALSE(
      parsePolicy("constraint n >= 1\nloc x : nosuch\n", &Error).has_value());
  EXPECT_NE(Error.find("line 2"), std::string::npos);
}

TEST(PolicyParser, PointerAndInteriorTypes) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
loc p : int32(n] state=init
loc q : int32** state=uninit
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  EXPECT_EQ(P->Locations[0].Type->kind(), TypeKind::ArrayInterior);
  EXPECT_EQ(P->Locations[1].Type->kind(), TypeKind::Ptr);
  EXPECT_EQ(P->Locations[1].Type->pointee()->kind(), TypeKind::Ptr);
}

TEST(PolicyParser, PostconditionDirectives) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
loc ctr : int32 state=init
postconstraint val:ctr >= 1
postconstraint %o0 >= 0
postconstraint addr:ctr > 0
postloc ctr state=init
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  ASSERT_EQ(P->PostConstraints.size(), 3u);
  // val:ctr resolves to the location-value variable.
  EXPECT_TRUE(P->PostConstraints[0]->freeVars().count(locValueVar("ctr")));
  EXPECT_TRUE(P->PostConstraints[2]->freeVars().count(locAddrVar("ctr")));
  ASSERT_EQ(P->PostStates.size(), 1u);
  EXPECT_EQ(P->PostStates[0].first, "ctr");
  EXPECT_EQ(P->PostStates[0].second.K, StateSpec::Kind::Init);
}

TEST(PolicyParser, AutomatonDirective) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
trusted f {
}
automaton proto {
  state a
  state b
  start a
  transition a -> b on f
  final a
}
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  ASSERT_EQ(P->Automata.size(), 1u);
  EXPECT_EQ(P->Automata[0].States.size(), 2u);
  EXPECT_EQ(P->Automata[0].Final.size(), 1u);
}

TEST(PolicyParser, TrustedWritesList) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(R"(
loc a : int32 state=uninit
loc b : int32 state=uninit
trusted fill {
  writes a, b
}
)", &Error);
  ASSERT_TRUE(P.has_value()) << Error;
  const TrustedSummary *S = P->findTrusted("fill");
  ASSERT_NE(S, nullptr);
  ASSERT_EQ(S->Writes.size(), 2u);
  EXPECT_EQ(S->Writes[1], "b");
}

// -- hardening: positioned rejection of hostile or sloppy inputs --

/// Expects \p Source to be rejected with an error containing \p Needle.
void expectRejected(const char *Source, const char *Needle) {
  std::string Error;
  std::optional<Policy> P = parsePolicy(Source, &Error);
  EXPECT_FALSE(P.has_value()) << "accepted: " << Source;
  EXPECT_NE(Error.find(Needle), std::string::npos)
      << "error was: " << Error;
}

TEST(PolicyParser, IntegerOverflowIsRejectedNotClampedToZero) {
  // parseInt returns nullopt on overflow; the old .value_or(0) fallback
  // silently turned the literal into 0.
  expectRejected("loc e : int32 state=init(99999999999999999999)\n",
                 "out of range");
  expectRejected("loc a : int32[99999999999999999999] state=uninit\n",
                 "out of range");
  expectRejected(
      "loc e : int32 state=init\ninvoke %o0 = 99999999999999999999\n",
      "out of range");
  expectRejected("constraint 99999999999999999999 >= 1\n", "out of range");
}

TEST(PolicyParser, StructFieldValuesMustFitInUint32) {
  expectRejected("struct S { f : int32 @ 4294967296 }\n",
                 "does not fit in 32 bits");
  expectRejected("struct S { f : int32 @ 0 x 4294967296 }\n",
                 "does not fit in 32 bits");
  expectRejected("struct S { f : int32 @ 0 } size 4294967296\n",
                 "does not fit in 32 bits");
  expectRejected("abstract A size 4294967296\n", "does not fit in 32 bits");
  expectRejected("struct S { f : int32 @ 0 } align 4294967296\n",
                 "does not fit in 32 bits");
  // The boundary value itself is fine.
  std::string Error;
  EXPECT_TRUE(
      parsePolicy("struct S { f : int32 @ 0 } size 4294967295\n", &Error)
          .has_value())
      << Error;
}

TEST(PolicyParser, DefaultStructSizeCannotWrap) {
  // offset + count * elem-size computed in 64 bits: 4 * 0x7FFFFFFF * 4
  // would wrap a 32-bit size computation to something tiny.
  expectRejected("struct S { f : int32 @ 8 x 4294967295 }\n",
                 "larger than 32 bits");
}

TEST(PolicyParser, DuplicateInvokeRegisterIsRejected) {
  expectRejected("loc e : int32 state=init\n"
                 "invoke %o0 = e\n"
                 "invoke %o0 = 4\n",
                 "duplicate 'invoke' binding for register '%o0'");
  // Distinct registers remain fine.
  std::string Error;
  EXPECT_TRUE(parsePolicy("loc e : int32 state=init\n"
                          "invoke %o0 = e\n"
                          "invoke %o1 = 4\n",
                          &Error)
                  .has_value())
      << Error;
}

TEST(PolicyParser, DottedPathsAreValidatedThroughMemberLabels) {
  const char *Prefix = "struct Inner { x : int32 @ 0 }\n"
                       "struct Outer { a : int32 @ 0 ; b : Inner @ 4 }\n"
                       "loc s : Outer\n";
  std::string Error;
  // Paths through declared members, at any depth, are accepted.
  EXPECT_TRUE(
      parsePolicy((std::string(Prefix) + "region V { s.a }\n").c_str(),
                  &Error)
          .has_value())
      << Error;
  EXPECT_TRUE(
      parsePolicy((std::string(Prefix) + "region V { s.b.x }\n").c_str(),
                  &Error)
          .has_value())
      << Error;
  // A bogus field anywhere along the path is rejected — previously only
  // the base name before the first '.' was checked.
  expectRejected((std::string(Prefix) + "region V { s.ghost }\n").c_str(),
                 "undeclared location");
  expectRejected((std::string(Prefix) + "region V { s.b.ghost }\n").c_str(),
                 "undeclared location");
  // A path through a scalar has no members to name.
  expectRejected((std::string(Prefix) + "region V { s.a.x }\n").c_str(),
                 "undeclared location");
  // The same walk guards points-to targets and postloc references.
  expectRejected(std::string(Prefix)
                     .append("loc p : int32* state={s.ghost}\n")
                     .c_str(),
                 "undeclared");
  expectRejected(
      std::string(Prefix).append("postloc s.ghost state=init\n").c_str(),
      "undeclared");
}

TEST(PolicyParser, RegValueVarNaming) {
  EXPECT_EQ(varName(regValueVar(0, sparc::O1)), "w0.%o1");
  EXPECT_EQ(varName(regValueVar(2, sparc::L0)), "w2.%l0");
  // Globals are depth-independent.
  EXPECT_EQ(varName(regValueVar(3, sparc::Reg(3))), "w0.%g3");
  EXPECT_EQ(varName(iccVar()), "icc");
}

} // namespace
