//===- ProtocolTest.cpp - mcsafe-serve wire format ------------------------===//
//
// The frame format's contract, mirroring SerializeTest's approach to
// untrusted bytes: a valid frame round-trips exactly; EVERY truncation,
// every single-bit flip, and any oversized length fails the decode —
// the reader never fabricates a message, never crashes, and never obeys
// a frame whose type byte was corrupted (the digest covers it).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include <gtest/gtest.h>

#include <string>

using namespace mcsafe;
using namespace mcsafe::serve;
using namespace mcsafe::checker;

namespace {

CheckRequestMsg sampleRequest() {
  CheckRequestMsg Req;
  Req.ReqId = 0x1122334455667788ULL;
  Req.Name = "corpus/Sum";
  Req.Asm = "sum:\n  retl\n  nop\n";
  Req.Policy = "policy {}\n";
  Req.DeadlineMs = 1500;
  Req.ProverSteps = 100000;
  Req.Flags = ReqFlagLint | ReqFlagKnownBits | ReqFlagTiers |
              ReqFlagFailSoft | ReqFlagTrace;
  return Req;
}

CheckResponseMsg sampleResponse() {
  CheckResponseMsg Resp;
  Resp.ReqId = 99;
  Resp.Shed = false;
  CheckReport &R = Resp.Report;
  R.InputsOk = true;
  R.Safe = false;
  R.Verdict = CheckVerdict::Unsafe;
  R.Failures.push_back({CheckPhase::Global, FailureKind::ResourceExhausted,
                        std::optional<uint32_t>(7), "budget gone"});
  R.Diags.report(DiagSeverity::Violation, SafetyKind::ArrayBounds,
                 "out-of-bounds store", 3, 12);
  R.Chars.Instructions = 41;
  R.Chars.GlobalConditions = 5;
  R.TypestateNodeVisits = 77;
  R.Global.ObligationsProved = 4;
  R.ProverStats.SatQueries = 12;
  return Resp;
}

TEST(Protocol, FrameRoundTripsEveryMessageType) {
  for (MsgType T : {MsgType::CheckRequest, MsgType::CheckResponse,
                    MsgType::Ping, MsgType::Pong, MsgType::StatsRequest,
                    MsgType::StatsResponse, MsgType::Shutdown,
                    MsgType::ShutdownAck}) {
    std::string Payload = "payload-for-" +
                          std::to_string(static_cast<int>(T));
    std::string Frame = encodeFrame(T, Payload);
    EXPECT_EQ(Frame.size(), FrameHeaderSize + Payload.size());
    auto Decoded = decodeFrame(Frame);
    ASSERT_TRUE(Decoded.has_value());
    EXPECT_EQ(Decoded->first, T);
    EXPECT_EQ(Decoded->second, Payload);
  }
}

TEST(Protocol, EmptyPayloadFrameRoundTrips) {
  std::string Frame = encodeFrame(MsgType::Ping, {});
  EXPECT_EQ(Frame.size(), FrameHeaderSize);
  auto Decoded = decodeFrame(Frame);
  ASSERT_TRUE(Decoded.has_value());
  EXPECT_EQ(Decoded->first, MsgType::Ping);
  EXPECT_TRUE(Decoded->second.empty());
}

TEST(Protocol, EveryTruncationOfAFrameFailsTheDecode) {
  std::string Frame =
      encodeFrame(MsgType::CheckRequest, encodeCheckRequest(sampleRequest()));
  for (size_t Len = 0; Len < Frame.size(); ++Len)
    EXPECT_FALSE(decodeFrame(std::string_view(Frame).substr(0, Len))
                     .has_value())
        << "truncation to " << Len << " bytes decoded";
}

TEST(Protocol, EverySingleBitFlipFailsTheDecode) {
  std::string Frame =
      encodeFrame(MsgType::CheckRequest, encodeCheckRequest(sampleRequest()));
  ASSERT_TRUE(decodeFrame(Frame).has_value());
  for (size_t Pos = 0; Pos < Frame.size(); ++Pos) {
    for (int Bit = 0; Bit < 8; ++Bit) {
      std::string Mutant = Frame;
      Mutant[Pos] = static_cast<char>(Mutant[Pos] ^ (1 << Bit));
      // A flipped type byte must fail via the digest, not route the
      // frame to a different handler; a flipped length must fail the
      // size check; a flipped payload or digest byte must fail the
      // digest comparison.
      EXPECT_FALSE(decodeFrame(Mutant).has_value())
          << "bit " << Bit << " at byte " << Pos << " decoded";
    }
  }
}

TEST(Protocol, TrailingGarbageFailsTheDecode) {
  std::string Frame = encodeFrame(MsgType::Ping, {});
  Frame.push_back('x');
  EXPECT_FALSE(decodeFrame(Frame).has_value());
}

TEST(Protocol, OversizedLengthIsRejectedAtTheHeader) {
  std::string Frame = encodeFrame(MsgType::CheckRequest, "abc");
  // Patch the length field (offset 6, u32 LE) to just past the cap.
  uint32_t Huge = MaxFramePayload + 1;
  for (int I = 0; I < 4; ++I)
    Frame[6 + I] = static_cast<char>((Huge >> (8 * I)) & 0xff);
  FrameHeader H;
  EXPECT_FALSE(
      decodeFrameHeader(std::string_view(Frame).substr(0, FrameHeaderSize),
                        H));
}

TEST(Protocol, WrongMagicVersionAndTypeAreRejected) {
  std::string Good = encodeFrame(MsgType::Ping, {});
  FrameHeader H;

  std::string BadMagic = Good;
  BadMagic[0] = 'X';
  EXPECT_FALSE(decodeFrameHeader(
      std::string_view(BadMagic).substr(0, FrameHeaderSize), H));

  std::string BadVersion = Good;
  BadVersion[4] = static_cast<char>(ProtocolVersion + 1);
  EXPECT_FALSE(decodeFrameHeader(
      std::string_view(BadVersion).substr(0, FrameHeaderSize), H));

  std::string BadType = Good;
  BadType[5] = 0; // Below CheckRequest.
  EXPECT_FALSE(decodeFrameHeader(
      std::string_view(BadType).substr(0, FrameHeaderSize), H));
  BadType[5] = static_cast<char>(
      static_cast<uint8_t>(MsgType::ShutdownAck) + 1);
  EXPECT_FALSE(decodeFrameHeader(
      std::string_view(BadType).substr(0, FrameHeaderSize), H));
}

TEST(Protocol, CheckRequestRoundTripsExactly) {
  CheckRequestMsg Req = sampleRequest();
  std::string Payload = encodeCheckRequest(Req);
  CheckRequestMsg Out;
  ASSERT_TRUE(decodeCheckRequest(Payload, Out));
  EXPECT_EQ(Out.ReqId, Req.ReqId);
  EXPECT_EQ(Out.Name, Req.Name);
  EXPECT_EQ(Out.Asm, Req.Asm);
  EXPECT_EQ(Out.Policy, Req.Policy);
  EXPECT_EQ(Out.DeadlineMs, Req.DeadlineMs);
  EXPECT_EQ(Out.ProverSteps, Req.ProverSteps);
  EXPECT_EQ(Out.Flags, Req.Flags);
}

TEST(Protocol, EveryTruncationOfACheckRequestFails) {
  std::string Payload = encodeCheckRequest(sampleRequest());
  for (size_t Len = 0; Len < Payload.size(); ++Len) {
    CheckRequestMsg Out;
    EXPECT_FALSE(
        decodeCheckRequest(std::string_view(Payload).substr(0, Len), Out))
        << "truncation to " << Len << " bytes decoded";
  }
}

TEST(Protocol, CheckRequestTrailingGarbageFails) {
  std::string Payload = encodeCheckRequest(sampleRequest());
  Payload.push_back('\0');
  CheckRequestMsg Out;
  EXPECT_FALSE(decodeCheckRequest(Payload, Out));
}

TEST(Protocol, CheckResponseRoundTripsTheWholeReport) {
  CheckResponseMsg Resp = sampleResponse();
  std::string Payload = encodeCheckResponse(Resp);
  CheckResponseMsg Out;
  ASSERT_TRUE(decodeCheckResponse(Payload, Out));
  EXPECT_EQ(Out.ReqId, Resp.ReqId);
  EXPECT_EQ(Out.Shed, Resp.Shed);
  // Re-encoding the decoded response must reproduce the bytes exactly —
  // the property the daemon-vs-CLI byte comparisons stand on.
  EXPECT_EQ(encodeCheckResponse(Out), Payload);
  EXPECT_EQ(Out.Report.Verdict, Resp.Report.Verdict);
  EXPECT_EQ(Out.Report.Diags.str(), Resp.Report.Diags.str());
  ASSERT_EQ(Out.Report.Failures.size(), 1u);
  EXPECT_EQ(Out.Report.Failures[0].str(),
            Resp.Report.Failures[0].str());
}

TEST(Protocol, EveryTruncationOfACheckResponseFails) {
  std::string Payload = encodeCheckResponse(sampleResponse());
  for (size_t Len = 0; Len < Payload.size(); ++Len) {
    CheckResponseMsg Out;
    EXPECT_FALSE(
        decodeCheckResponse(std::string_view(Payload).substr(0, Len), Out))
        << "truncation to " << Len << " bytes decoded";
  }
}

TEST(Protocol, ShedResponseRoundTripsAndStaysUnknown) {
  CheckResponseMsg Resp;
  Resp.ReqId = 5;
  Resp.Shed = true;
  Resp.Report.Verdict = CheckVerdict::Unknown;
  Resp.Report.Failures.push_back({CheckPhase::Driver,
                                  FailureKind::ResourceExhausted,
                                  std::nullopt,
                                  "load shed: admission queue full"});
  CheckResponseMsg Out;
  ASSERT_TRUE(decodeCheckResponse(encodeCheckResponse(Resp), Out));
  EXPECT_TRUE(Out.Shed);
  EXPECT_EQ(Out.Report.Verdict, CheckVerdict::Unknown);
  EXPECT_FALSE(Out.Report.Safe);
}

TEST(Protocol, BogusShedByteFails) {
  std::string Payload = encodeCheckResponse(sampleResponse());
  Payload[8] = 2; // Shed flag is at offset 8, after the u64 ReqId.
  CheckResponseMsg Out;
  EXPECT_FALSE(decodeCheckResponse(Payload, Out));
}

} // namespace
