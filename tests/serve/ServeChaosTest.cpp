//===- ServeChaosTest.cpp - daemon under injected faults ------------------===//
//
// The chaos driver pointed at the daemon: deterministic faults at the
// "serve/write" site (and every site inside the checking pipeline) while
// clients stream the corpus through a live server. The fail-sound
// invariant, extended to the wire:
//
//   (1) no crash, no hang, no SIGPIPE — a failed response write latches
//       that one connection dead and nothing else;
//   (2) every response a client DOES receive is fail-sound: never a
//       Safe verdict the fault-free run did not also produce;
//   (3) the server outlives every injected fault — once the plan is
//       disarmed, a fresh client gets service.
//
// In builds without MCSAFE_FAULT_INJECTION the fault points compile to
// `false`; the tests then assert a disarmed plan changes nothing.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>

#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;
using namespace mcsafe::serve;

namespace {

std::atomic<int> SockSerial{0};

std::string freshSocketPath() {
  return "/tmp/mcsafe-chaos-" + std::to_string(::getpid()) + "-" +
         std::to_string(SockSerial.fetch_add(1)) + ".sock";
}

std::map<std::string, CheckVerdict> localBaseline() {
  std::map<std::string, CheckVerdict> Verdicts;
  for (const CorpusProgram &P : corpus::corpus()) {
    SafetyChecker Checker;
    Verdicts[P.Name] = Checker.checkSource(P.Asm, P.Policy).Verdict;
  }
  return Verdicts;
}

class ServeChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServeChaos, WriteFaultsNeverManufactureASafeVerdict) {
  std::map<std::string, CheckVerdict> Baseline = localBaseline();

  ServerOptions Opts;
  Opts.SocketPath = freshSocketPath();
  Opts.Jobs = 2;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  support::FaultPlan Plan(GetParam());
  support::FaultPlan::install(&Plan);

  size_t Received = 0, Dropped = 0;
  for (const CorpusProgram &P : corpus::corpus()) {
    // One connection per program: a "serve/write" fault kills at most
    // this one client, and the next must get a fresh, working one.
    Client Conn;
    if (!Conn.connect(Opts.SocketPath, Error)) {
      ++Dropped;
      continue;
    }
    CheckRequestMsg Req;
    Req.ReqId = 1;
    Req.Name = P.Name;
    Req.Asm = P.Asm;
    Req.Policy = P.Policy;
    CheckResponseMsg Resp;
    if (!Conn.check(Req, Resp, Error)) {
      // A write fault severed the connection mid-response. That is the
      // degraded path working: the response is lost, not corrupted.
      ++Dropped;
      continue;
    }
    ++Received;
    // Fail-sound in both directions, as in the corpus chaos driver.
    if (Resp.Report.Verdict == CheckVerdict::Safe)
      EXPECT_EQ(Baseline[P.Name], CheckVerdict::Safe) << P.Name;
    if (Resp.Report.Verdict == CheckVerdict::Unsafe)
      EXPECT_EQ(Baseline[P.Name], CheckVerdict::Unsafe) << P.Name;
  }

  support::FaultPlan::install(nullptr);

  // The server outlived every injected fault: disarmed, it serves again.
  Client After;
  ASSERT_TRUE(After.connect(Opts.SocketPath, Error)) << Error;
  EXPECT_TRUE(After.ping(Error)) << Error;

#if !defined(MCSAFE_FAULT_INJECTION)
  // Fault points compiled out: nothing fired, nothing dropped, and every
  // verdict is exactly the baseline.
  EXPECT_EQ(Plan.firedCount(), 0u);
  EXPECT_EQ(Dropped, 0u);
  EXPECT_EQ(Received, corpus::corpus().size());
#else
  (void)Received;
  (void)Dropped;
#endif

  Srv.requestStop();
  Srv.wait();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeChaos, ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "seed" + std::to_string(I.param);
                         });

class ServeChaosIsolated : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServeChaosIsolated, WorkerDeathsNeverManufactureASafeVerdict) {
  // Isolation mode under the worker fault sites (serve/worker-crash,
  // serve/worker-oom, serve/worker-hang — plus every site inside the
  // checking pipeline, all inherited by the forked workers). The
  // containment contract: a killed or hung worker costs its own request
  // a structured UNKNOWN, other clients still get served, and the
  // daemon outlives all of it.
  std::map<std::string, CheckVerdict> Baseline = localBaseline();

  // Installed before start() so the forked workers inherit the plan.
  support::FaultPlan Plan(GetParam());
  support::FaultPlan::install(&Plan);

  ServerOptions Opts;
  Opts.SocketPath = freshSocketPath();
  Opts.Jobs = 2;
  Opts.IsolateWorkers = true;
  // Bound the hang site: the response wait is deadline + grace, so a
  // worker stuck in the pause() loop is escalated within ~1.75 s. The
  // cap is far above any corpus program's real runtime, so in builds
  // without fault injection nothing times out.
  Opts.DeadlineCapMs = 1500;
  Opts.Worker.GraceMs = 250;
  Opts.Worker.RestartBackoffBaseMs = 1;
  Opts.Worker.RestartBackoffCapMs = 5;
  // Quarantine off: each program is sent once, and this test is about
  // containment, not the poison list.
  Opts.Worker.QuarantineAfter = 0;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  size_t Received = 0, Contained = 0, Dropped = 0;
  for (const CorpusProgram &P : corpus::corpus()) {
    Client Conn;
    if (!Conn.connect(Opts.SocketPath, Error)) {
      ADD_FAILURE() << "daemon stopped accepting: " << Error;
      break;
    }
    CheckRequestMsg Req;
    Req.ReqId = 1;
    Req.Name = P.Name;
    Req.Asm = P.Asm;
    Req.Policy = P.Policy;
    CheckResponseMsg Resp;
    if (!Conn.check(Req, Resp, Error)) {
      // The plan also arms the parent's serve/write site, which severs
      // this one connection mid-response — the non-isolated degraded
      // path, not a containment failure. (That a *worker death* never
      // severs the connection is pinned down by WorkerPoolTest, where
      // the crash hook is the only fault in play.)
      ++Dropped;
      continue;
    }
    ++Received;
    if (!Resp.Report.Failures.empty() &&
        Resp.Report.Failures[0].Kind == FailureKind::WorkerCrashed) {
      ++Contained;
      EXPECT_EQ(Resp.Report.Verdict, CheckVerdict::Unknown) << P.Name;
      EXPECT_FALSE(Resp.Report.Safe) << P.Name;
    }
    // Fail-sound in both directions.
    if (Resp.Report.Verdict == CheckVerdict::Safe)
      EXPECT_EQ(Baseline[P.Name], CheckVerdict::Safe) << P.Name;
    if (Resp.Report.Verdict == CheckVerdict::Unsafe)
      EXPECT_EQ(Baseline[P.Name], CheckVerdict::Unsafe) << P.Name;
  }
  EXPECT_EQ(Received + Dropped, corpus::corpus().size());

  support::FaultPlan::install(nullptr);

  // The daemon outlived every worker death. (Workers forked while the
  // plan was armed may still carry it, so the liveness probe is a ping,
  // which never touches a worker.)
  Client After;
  ASSERT_TRUE(After.connect(Opts.SocketPath, Error)) << Error;
  EXPECT_TRUE(After.ping(Error)) << Error;

#if !defined(MCSAFE_FAULT_INJECTION)
  // Fault points compiled out: no worker ever died, and every verdict
  // matched the baseline exactly.
  EXPECT_EQ(Plan.firedCount(), 0u);
  EXPECT_EQ(Contained, 0u);
  EXPECT_EQ(Dropped, 0u);
#else
  (void)Contained;
#endif

  Srv.requestStop();
  Srv.wait();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeChaosIsolated,
                         ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "seed" + std::to_string(I.param);
                         });

} // namespace
