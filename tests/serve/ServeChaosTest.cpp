//===- ServeChaosTest.cpp - daemon under injected faults ------------------===//
//
// The chaos driver pointed at the daemon: deterministic faults at the
// "serve/write" site (and every site inside the checking pipeline) while
// clients stream the corpus through a live server. The fail-sound
// invariant, extended to the wire:
//
//   (1) no crash, no hang, no SIGPIPE — a failed response write latches
//       that one connection dead and nothing else;
//   (2) every response a client DOES receive is fail-sound: never a
//       Safe verdict the fault-free run did not also produce;
//   (3) the server outlives every injected fault — once the plan is
//       disarmed, a fresh client gets service.
//
// In builds without MCSAFE_FAULT_INJECTION the fault points compile to
// `false`; the tests then assert a disarmed plan changes nothing.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include "checker/SafetyChecker.h"
#include "corpus/Corpus.h"
#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>

#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;
using namespace mcsafe::serve;

namespace {

std::atomic<int> SockSerial{0};

std::string freshSocketPath() {
  return "/tmp/mcsafe-chaos-" + std::to_string(::getpid()) + "-" +
         std::to_string(SockSerial.fetch_add(1)) + ".sock";
}

std::map<std::string, CheckVerdict> localBaseline() {
  std::map<std::string, CheckVerdict> Verdicts;
  for (const CorpusProgram &P : corpus::corpus()) {
    SafetyChecker Checker;
    Verdicts[P.Name] = Checker.checkSource(P.Asm, P.Policy).Verdict;
  }
  return Verdicts;
}

class ServeChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServeChaos, WriteFaultsNeverManufactureASafeVerdict) {
  std::map<std::string, CheckVerdict> Baseline = localBaseline();

  ServerOptions Opts;
  Opts.SocketPath = freshSocketPath();
  Opts.Jobs = 2;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  support::FaultPlan Plan(GetParam());
  support::FaultPlan::install(&Plan);

  size_t Received = 0, Dropped = 0;
  for (const CorpusProgram &P : corpus::corpus()) {
    // One connection per program: a "serve/write" fault kills at most
    // this one client, and the next must get a fresh, working one.
    Client Conn;
    if (!Conn.connect(Opts.SocketPath, Error)) {
      ++Dropped;
      continue;
    }
    CheckRequestMsg Req;
    Req.ReqId = 1;
    Req.Name = P.Name;
    Req.Asm = P.Asm;
    Req.Policy = P.Policy;
    CheckResponseMsg Resp;
    if (!Conn.check(Req, Resp, Error)) {
      // A write fault severed the connection mid-response. That is the
      // degraded path working: the response is lost, not corrupted.
      ++Dropped;
      continue;
    }
    ++Received;
    // Fail-sound in both directions, as in the corpus chaos driver.
    if (Resp.Report.Verdict == CheckVerdict::Safe)
      EXPECT_EQ(Baseline[P.Name], CheckVerdict::Safe) << P.Name;
    if (Resp.Report.Verdict == CheckVerdict::Unsafe)
      EXPECT_EQ(Baseline[P.Name], CheckVerdict::Unsafe) << P.Name;
  }

  support::FaultPlan::install(nullptr);

  // The server outlived every injected fault: disarmed, it serves again.
  Client After;
  ASSERT_TRUE(After.connect(Opts.SocketPath, Error)) << Error;
  EXPECT_TRUE(After.ping(Error)) << Error;

#if !defined(MCSAFE_FAULT_INJECTION)
  // Fault points compiled out: nothing fired, nothing dropped, and every
  // verdict is exactly the baseline.
  EXPECT_EQ(Plan.firedCount(), 0u);
  EXPECT_EQ(Dropped, 0u);
  EXPECT_EQ(Received, corpus::corpus().size());
#else
  (void)Received;
  (void)Dropped;
#endif

  Srv.requestStop();
  Srv.wait();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ServeChaos, ::testing::Values(1u, 2u, 3u),
                         [](const ::testing::TestParamInfo<uint64_t> &I) {
                           return "seed" + std::to_string(I.param);
                         });

} // namespace
