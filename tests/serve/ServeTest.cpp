//===- ServeTest.cpp - resident verification daemon -----------------------===//
//
// The daemon's contract:
//
//   (1) reports are byte-identical to local runs — for any server job
//       count, any cache warmth, any client interleaving;
//   (2) admission control is fail-sound: a shed request is UNKNOWN with
//       a structured failure, never an unearned SAFE;
//   (3) one client's disconnect, protocol violation, or mid-write
//       vanishing never perturbs another client's in-flight check or
//       kills the server (MSG_NOSIGNAL, no SIGPIPE);
//   (4) per-request budgets are honored and clamped to the server caps.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include "checker/ParallelCheck.h"
#include "corpus/Corpus.h"
#include "support/Io.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;
using namespace mcsafe::serve;

namespace {

std::atomic<int> SockSerial{0};

/// A short unique socket path (sockaddr_un caps paths around 107
/// bytes, so no deep temp dirs here).
std::string freshSocketPath() {
  return "/tmp/mcsafe-serve-" + std::to_string(::getpid()) + "-" +
         std::to_string(SockSerial.fetch_add(1)) + ".sock";
}

std::vector<CheckJob> corpusJobs() {
  std::vector<CheckJob> Jobs;
  for (const CorpusProgram &P : corpus::corpus())
    Jobs.push_back({P.Name, P.Asm, P.Policy});
  return Jobs;
}

/// The local ground truth: the deterministic batch report at Jobs=1
/// (the baseline every other configuration must reproduce byte for
/// byte).
std::string localBaselineRender() {
  ParallelCheckOptions Opts;
  Opts.Jobs = 1;
  return renderParallelReport(checkJobs(corpusJobs(), Opts));
}

/// Runs the whole corpus against a server over one pipelined
/// connection and renders the responses with the same code path the
/// CLI uses.
std::string remoteCorpusRender(Client &Conn) {
  const std::vector<CorpusProgram> &Programs = corpus::corpus();
  std::string Error;
  for (size_t I = 0; I < Programs.size(); ++I) {
    CheckRequestMsg Req;
    Req.ReqId = I;
    Req.Name = Programs[I].Name;
    Req.Asm = Programs[I].Asm;
    Req.Policy = Programs[I].Policy;
    EXPECT_TRUE(Conn.sendCheck(Req, Error)) << Error;
  }
  ParallelCheckResult R;
  R.Programs.resize(Programs.size());
  for (size_t I = 0; I < Programs.size(); ++I)
    R.Programs[I].Name = Programs[I].Name;
  for (size_t I = 0; I < Programs.size(); ++I) {
    CheckResponseMsg Resp;
    EXPECT_TRUE(Conn.recvCheck(Resp, Error)) << Error;
    EXPECT_FALSE(Resp.Shed);
    EXPECT_LT(Resp.ReqId, R.Programs.size());
    R.Programs[Resp.ReqId].Report = std::move(Resp.Report);
  }
  return renderParallelReport(R);
}

struct RunningServer {
  ServerOptions Opts;
  std::unique_ptr<Server> Srv;
  explicit RunningServer(unsigned Jobs, size_t MaxQueue = 256) {
    Opts.SocketPath = freshSocketPath();
    Opts.Jobs = Jobs;
    Opts.MaxQueue = MaxQueue;
    Srv = std::make_unique<Server>(Opts);
    std::string Error;
    EXPECT_TRUE(Srv->start(Error)) << Error;
  }
  ~RunningServer() {
    Srv->requestStop();
    Srv->wait();
  }
};

TEST(Serve, PingAndStatsRoundTrip) {
  support::MetricsRegistry Registry;
  ServerOptions Opts;
  Opts.SocketPath = freshSocketPath();
  Opts.Jobs = 2;
  Opts.Metrics = &Registry;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  Client Conn;
  ASSERT_TRUE(Conn.connect(Opts.SocketPath, Error)) << Error;
  EXPECT_TRUE(Conn.ping(Error)) << Error;
  std::string Json;
  EXPECT_TRUE(Conn.serverStats(Json, Error)) << Error;
  EXPECT_NE(Json.find("serve"), std::string::npos) << Json;

  Srv.requestStop();
  Srv.wait();
}

TEST(Serve, SingleCheckReportMatchesLocalRun) {
  const CorpusProgram &P = corpus::corpus().front();
  ParallelCheckOptions LocalOpts;
  LocalOpts.Jobs = 1;
  ParallelCheckResult Local =
      checkJobs({{P.Name, P.Asm, P.Policy}}, LocalOpts);

  RunningServer S(2);
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
  CheckRequestMsg Req;
  Req.ReqId = 42;
  Req.Name = P.Name;
  Req.Asm = P.Asm;
  Req.Policy = P.Policy;
  CheckResponseMsg Resp;
  ASSERT_TRUE(Conn.check(Req, Resp, Error)) << Error;
  EXPECT_FALSE(Resp.Shed);

  ParallelCheckResult Remote;
  Remote.Programs.resize(1);
  Remote.Programs[0].Name = P.Name;
  Remote.Programs[0].Report = std::move(Resp.Report);
  EXPECT_EQ(renderParallelReport(Remote), renderParallelReport(Local));
}

TEST(Serve, CorpusReportByteIdenticalForEveryServerJobCount) {
  std::string Baseline = localBaselineRender();
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    RunningServer S(Jobs);
    Client Conn;
    std::string Error;
    ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
    EXPECT_EQ(remoteCorpusRender(Conn), Baseline)
        << "daemon with --jobs " << Jobs
        << " diverged from the local Jobs=1 baseline";
  }
}

TEST(Serve, WarmCachesDoNotChangeASingleByte) {
  // The whole point of the daemon is reuse — and reuse must be
  // invisible in the report. Same connection, same server, twice.
  std::string Baseline = localBaselineRender();
  RunningServer S(4);
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
  EXPECT_EQ(remoteCorpusRender(Conn), Baseline);
  EXPECT_EQ(remoteCorpusRender(Conn), Baseline);
}

TEST(Serve, ConcurrentClientsEachGetTheirOwnAnswers) {
  // Baseline verdict per program, locally.
  ParallelCheckOptions LocalOpts;
  LocalOpts.Jobs = 1;
  ParallelCheckResult Local = checkJobs(corpusJobs(), LocalOpts);

  RunningServer S(4);
  const std::vector<CorpusProgram> &Programs = corpus::corpus();
  const size_t NClients = 4;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (size_t T = 0; T < NClients; ++T) {
    Threads.emplace_back([&, T] {
      Client Conn;
      std::string Error;
      if (!Conn.connect(S.Opts.SocketPath, Error)) {
        ++Failures;
        return;
      }
      // Each client pipelines a stride of the corpus, then matches
      // responses by id.
      std::vector<size_t> Mine;
      for (size_t I = T; I < Programs.size(); I += NClients)
        Mine.push_back(I);
      for (size_t I : Mine) {
        CheckRequestMsg Req;
        Req.ReqId = I;
        Req.Name = Programs[I].Name;
        Req.Asm = Programs[I].Asm;
        Req.Policy = Programs[I].Policy;
        if (!Conn.sendCheck(Req, Error)) {
          ++Failures;
          return;
        }
      }
      for (size_t K = 0; K < Mine.size(); ++K) {
        CheckResponseMsg Resp;
        if (!Conn.recvCheck(Resp, Error)) {
          ++Failures;
          return;
        }
        if (Resp.Shed ||
            Resp.Report.Verdict !=
                Local.Programs[Resp.ReqId].Report.Verdict)
          ++Failures;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

TEST(Serve, ShedRequestsAreAlwaysUnknownNeverSafe) {
  // MaxQueue=0 sheds every request deterministically.
  RunningServer S(2, /*MaxQueue=*/0);
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
  const CorpusProgram &P = corpus::corpus().front();
  for (uint64_t I = 0; I < 5; ++I) {
    CheckRequestMsg Req;
    Req.ReqId = I;
    Req.Name = P.Name;
    Req.Asm = P.Asm;
    Req.Policy = P.Policy;
    CheckResponseMsg Resp;
    ASSERT_TRUE(Conn.check(Req, Resp, Error)) << Error;
    EXPECT_TRUE(Resp.Shed);
    EXPECT_EQ(Resp.Report.Verdict, CheckVerdict::Unknown);
    EXPECT_FALSE(Resp.Report.Safe);
    ASSERT_EQ(Resp.Report.Failures.size(), 1u);
    EXPECT_EQ(Resp.Report.Failures[0].Kind,
              FailureKind::ResourceExhausted);
    EXPECT_NE(Resp.Report.Failures[0].Detail.find("load shed"),
              std::string::npos);
  }
}

TEST(Serve, ClientVanishingMidRequestLeavesOthersUnaffected) {
  RunningServer S(2);
  const CorpusProgram &P = corpus::corpus().front();
  ParallelCheckOptions LocalOpts;
  LocalOpts.Jobs = 1;
  ParallelCheckResult Local =
      checkJobs({{P.Name, P.Asm, P.Policy}}, LocalOpts);

  // Client A fires a request and disappears before the response can be
  // written; the server's send hits a dead socket (EPIPE via
  // MSG_NOSIGNAL — a SIGPIPE would kill this whole test binary).
  {
    Client Ghost;
    std::string Error;
    ASSERT_TRUE(Ghost.connect(S.Opts.SocketPath, Error)) << Error;
    CheckRequestMsg Req;
    Req.ReqId = 1;
    Req.Name = P.Name;
    Req.Asm = P.Asm;
    Req.Policy = P.Policy;
    ASSERT_TRUE(Ghost.sendCheck(Req, Error)) << Error;
    Ghost.close();
  }

  // Client B's concurrent check is sound and complete.
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
  CheckRequestMsg Req;
  Req.ReqId = 2;
  Req.Name = P.Name;
  Req.Asm = P.Asm;
  Req.Policy = P.Policy;
  CheckResponseMsg Resp;
  ASSERT_TRUE(Conn.check(Req, Resp, Error)) << Error;
  EXPECT_EQ(Resp.Report.Verdict, Local.Programs[0].Report.Verdict);
  EXPECT_TRUE(Conn.ping(Error)) << Error;
}

TEST(Serve, GarbageBytesDropTheConnectionNotTheServer) {
  RunningServer S(2);
  // Raw socket speaking nonsense.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, S.Opts.SocketPath.c_str(),
              S.Opts.SocketPath.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::connect(Fd, reinterpret_cast<sockaddr *>(&Addr),
                      sizeof(Addr)),
            0);
  std::string Garbage = "this is definitely not an MSRV frame......";
  ASSERT_TRUE(support::sendAll(Fd, Garbage));
  char B;
  // The server drops the connection (EOF here), silently.
  EXPECT_EQ(support::recvFull(Fd, &B, 1), 0);
  support::closeFd(Fd);

  // And keeps serving everyone else.
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
  EXPECT_TRUE(Conn.ping(Error)) << Error;
}

TEST(Serve, ProverStepCapClampsEveryRequest) {
  // Find a corpus program that actually exercises the prover.
  const CorpusProgram *Heavy = nullptr;
  ParallelCheckOptions LocalOpts;
  LocalOpts.Jobs = 1;
  ParallelCheckResult Local = checkJobs(corpusJobs(), LocalOpts);
  for (size_t I = 0; I < Local.Programs.size(); ++I) {
    const CheckReport &R = Local.Programs[I].Report;
    if (R.Verdict == CheckVerdict::Safe && R.ProverStats.SatQueries > 2) {
      Heavy = &corpus::corpus()[I];
      break;
    }
  }
  ASSERT_NE(Heavy, nullptr);

  ServerOptions Opts;
  Opts.SocketPath = freshSocketPath();
  Opts.Jobs = 2;
  Opts.ProverStepsCap = 1;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  Client Conn;
  ASSERT_TRUE(Conn.connect(Opts.SocketPath, Error)) << Error;
  CheckRequestMsg Req;
  Req.ReqId = 1;
  Req.Name = Heavy->Name;
  Req.Asm = Heavy->Asm;
  Req.Policy = Heavy->Policy;
  Req.ProverSteps = 0; // "Unlimited" — the server cap must still bind.
  CheckResponseMsg Resp;
  ASSERT_TRUE(Conn.check(Req, Resp, Error)) << Error;
  // Fail-sound: the clamped budget downgrades to UNKNOWN, never SAFE.
  EXPECT_EQ(Resp.Report.Verdict, CheckVerdict::Unknown);
  ASSERT_FALSE(Resp.Report.Failures.empty());
  EXPECT_EQ(Resp.Report.Failures[0].Kind, FailureKind::ResourceExhausted);

  Srv.requestStop();
  Srv.wait();
}

TEST(Serve, ShutdownMessageStopsTheServerCleanly) {
  ServerOptions Opts;
  Opts.SocketPath = freshSocketPath();
  Opts.Jobs = 2;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  Client Conn;
  ASSERT_TRUE(Conn.connect(Opts.SocketPath, Error)) << Error;
  EXPECT_TRUE(Conn.shutdownServer(Error)) << Error;
  Srv.wait(); // Returns because the Shutdown message stopped it.

  // The socket is gone: fresh connections are refused.
  Client After;
  EXPECT_FALSE(After.connect(Opts.SocketPath, Error));
}

TEST(Serve, GracefulStopAnswersEveryAdmittedRequest) {
  // A client pipelines a burst, then the server is told to stop while
  // some of those requests are still queued or in flight. The drain
  // contract: every request gets exactly one response — a real report
  // or a shed UNKNOWN, never a silent drop — and only then does the
  // connection close.
  ServerOptions Opts;
  Opts.SocketPath = freshSocketPath();
  Opts.Jobs = 2;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;

  Client Conn;
  ASSERT_TRUE(Conn.connect(Opts.SocketPath, Error)) << Error;
  // The ping round-trip guarantees the server has accepted this
  // connection and its reader is up — requests pipelined from here on
  // are the server's to answer. (A connection still sitting in the
  // accept backlog at shutdown is refused with a reset, which is a
  // visible error, not a silent drop; that path is not under test.)
  ASSERT_TRUE(Conn.ping(Error)) << Error;
  const std::vector<CorpusProgram> &Programs = corpus::corpus();
  const size_t N = 8;
  for (size_t I = 0; I < N; ++I) {
    const CorpusProgram &P = Programs[I % Programs.size()];
    CheckRequestMsg Req;
    Req.ReqId = I;
    Req.Name = P.Name;
    Req.Asm = P.Asm;
    Req.Policy = P.Policy;
    ASSERT_TRUE(Conn.sendCheck(Req, Error)) << Error;
  }
  Srv.requestStop();
  // wait() returns only after every admitted request's response is on
  // the wire and the write sides are closed; the responses (and the
  // EOF behind them) are sitting in this client's socket buffer.
  Srv.wait();

  std::vector<bool> Answered(N, false);
  for (size_t I = 0; I < N; ++I) {
    CheckResponseMsg Resp;
    ASSERT_TRUE(Conn.recvCheck(Resp, Error))
        << "response " << I << " of " << N << ": " << Error;
    ASSERT_LT(Resp.ReqId, N);
    EXPECT_FALSE(Answered[Resp.ReqId]) << "duplicate response";
    Answered[Resp.ReqId] = true;
    if (Resp.Shed) {
      // Shed during drain: fail-sound UNKNOWN, structured reason.
      EXPECT_EQ(Resp.Report.Verdict, CheckVerdict::Unknown);
      EXPECT_FALSE(Resp.Report.Safe);
      ASSERT_EQ(Resp.Report.Failures.size(), 1u);
      EXPECT_EQ(Resp.Report.Failures[0].Kind,
                FailureKind::ResourceExhausted);
      EXPECT_NE(Resp.Report.Failures[0].Detail.find("shutting down"),
                std::string::npos);
    }
  }
  // All N answered; behind the last response is a clean EOF.
  MsgType Type;
  std::string Payload;
  EXPECT_FALSE(Conn.recvFrame(Type, Payload, Error));
  EXPECT_NE(Error.find("closed"), std::string::npos) << Error;
}

TEST(Serve, ClientTimeoutUnwedgesFromASilentDaemon) {
  // A "daemon" that accepts but never answers: a raw listening socket
  // nobody ever accepts or reads from. Without a timeout the client
  // would block in recv forever.
  std::string Path = freshSocketPath();
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(ListenFd, 0);
  ASSERT_EQ(
      ::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
      0);
  ASSERT_EQ(::listen(ListenFd, 8), 0);

  Client Conn;
  Conn.setTimeoutMs(300);
  std::string Error;
  ASSERT_TRUE(Conn.connect(Path, Error)) << Error;
  // The ping is written into the kernel buffer, but no response ever
  // comes: the receive times out with a structured, wedge-naming error.
  EXPECT_FALSE(Conn.ping(Error));
  EXPECT_NE(Error.find("no response from server"), std::string::npos)
      << Error;

  support::closeFd(ListenFd);
  ::unlink(Path.c_str());
}

TEST(Serve, StaleSocketFileIsReplacedOnStart) {
  std::string Path = freshSocketPath();
  {
    ServerOptions Opts;
    Opts.SocketPath = Path;
    Opts.Jobs = 1;
    Server Srv(Opts);
    std::string Error;
    ASSERT_TRUE(Srv.start(Error)) << Error;
    Srv.requestStop();
    Srv.wait();
  }
  // Simulate a crash leaving a stale socket file behind.
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(Fd, 0);
  ASSERT_EQ(::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)),
            0);
  support::closeFd(Fd); // fd closed, socket file left on disk.

  ServerOptions Opts;
  Opts.SocketPath = Path;
  Opts.Jobs = 1;
  Server Srv(Opts);
  std::string Error;
  ASSERT_TRUE(Srv.start(Error)) << Error;
  Client Conn;
  ASSERT_TRUE(Conn.connect(Path, Error)) << Error;
  EXPECT_TRUE(Conn.ping(Error)) << Error;
  Srv.requestStop();
  Srv.wait();
}

} // namespace
