//===- WorkerPoolTest.cpp - crash-contained verification ------------------===//
//
// The crash-containment contract (WorkerPool.h):
//
//   (1) with no faults firing, isolation is invisible: reports are
//       byte-identical with --isolate-workers on or off, at any --jobs;
//   (2) a worker that crashes, hangs, or is OOM-killed costs exactly its
//       own request — a structured UNKNOWN, never an unearned SAFE,
//       never a dead daemon — and the pool restarts the worker;
//   (3) an input that keeps killing workers is quarantined by content
//       digest, persisted across daemon restarts, and a corrupt poison
//       file degrades to an empty list instead of a crash;
//   (4) a slot that exceeds its restart budget is parked; a fully parked
//       pool answers immediately with ResourceExhausted, and the daemon
//       itself keeps serving non-check traffic.
//
// Worker deaths are provoked with WorkerPoolOptions::TestHook, which
// runs inside the forked child — so these tests work in every build,
// not just MCSAFE_FAULT_INJECTION ones.
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"
#include "serve/Server.h"

#include "checker/ParallelCheck.h"
#include "corpus/Corpus.h"
#include "support/Io.h"
#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <string>
#include <vector>

#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::checker;
using namespace mcsafe::corpus;
using namespace mcsafe::serve;

namespace {

std::atomic<int> PathSerial{0};

std::string freshSocketPath() {
  return "/tmp/mcsafe-wp-" + std::to_string(::getpid()) + "-" +
         std::to_string(PathSerial.fetch_add(1)) + ".sock";
}

std::string freshFilePath(const char *Stem) {
  return "/tmp/mcsafe-" + std::string(Stem) + "-" +
         std::to_string(::getpid()) + "-" +
         std::to_string(PathSerial.fetch_add(1));
}

std::string localBaselineRender() {
  std::vector<CheckJob> Jobs;
  for (const CorpusProgram &P : corpus::corpus())
    Jobs.push_back({P.Name, P.Asm, P.Policy});
  ParallelCheckOptions Opts;
  Opts.Jobs = 1;
  return renderParallelReport(checkJobs(Jobs, Opts));
}

std::string remoteCorpusRender(Client &Conn) {
  const std::vector<CorpusProgram> &Programs = corpus::corpus();
  std::string Error;
  for (size_t I = 0; I < Programs.size(); ++I) {
    CheckRequestMsg Req;
    Req.ReqId = I;
    Req.Name = Programs[I].Name;
    Req.Asm = Programs[I].Asm;
    Req.Policy = Programs[I].Policy;
    EXPECT_TRUE(Conn.sendCheck(Req, Error)) << Error;
  }
  ParallelCheckResult R;
  R.Programs.resize(Programs.size());
  for (size_t I = 0; I < Programs.size(); ++I)
    R.Programs[I].Name = Programs[I].Name;
  for (size_t I = 0; I < Programs.size(); ++I) {
    CheckResponseMsg Resp;
    EXPECT_TRUE(Conn.recvCheck(Resp, Error)) << Error;
    EXPECT_FALSE(Resp.Shed);
    EXPECT_LT(Resp.ReqId, R.Programs.size());
    R.Programs[Resp.ReqId].Report = std::move(Resp.Report);
  }
  return renderParallelReport(R);
}

/// A server in isolation mode with fast worker restarts, suitable for
/// provoking many deaths per second. \p Tune adjusts the options before
/// start (hooks, quarantine, restart budget).
struct IsolatedServer {
  ServerOptions Opts;
  support::MetricsRegistry Registry;
  std::unique_ptr<Server> Srv;
  bool Ok = false;

  explicit IsolatedServer(
      unsigned Jobs,
      const std::function<void(ServerOptions &)> &Tune = {}) {
    Opts.SocketPath = freshSocketPath();
    Opts.Jobs = Jobs;
    Opts.IsolateWorkers = true;
    Opts.Metrics = &Registry;
    Opts.Worker.RestartBackoffBaseMs = 1;
    Opts.Worker.RestartBackoffCapMs = 2;
    Opts.Worker.QuarantineAfter = 0;
    if (Tune)
      Tune(Opts);
    Srv = std::make_unique<Server>(Opts);
    std::string Error;
    Ok = Srv->start(Error);
    EXPECT_TRUE(Ok) << Error;
  }
  ~IsolatedServer() {
    Srv->requestStop();
    Srv->wait();
  }
  int64_t counter(const char *Name) const {
    return Registry.value(Name).value_or(0);
  }
};

CheckRequestMsg namedRequest(uint64_t Id, std::string Name) {
  const CorpusProgram &P = corpus::corpus().front();
  CheckRequestMsg Req;
  Req.ReqId = Id;
  Req.Name = std::move(Name);
  Req.Asm = P.Asm;
  Req.Policy = P.Policy;
  return Req;
}

/// The one structured failure a contained worker death must carry.
void expectContained(const CheckResponseMsg &Resp, FailureKind Kind) {
  EXPECT_EQ(Resp.Report.Verdict, CheckVerdict::Unknown);
  EXPECT_FALSE(Resp.Report.Safe);
  ASSERT_EQ(Resp.Report.Failures.size(), 1u);
  EXPECT_EQ(Resp.Report.Failures[0].Phase, CheckPhase::Driver);
  EXPECT_EQ(Resp.Report.Failures[0].Kind, Kind);
}

//===----------------------------------------------------------------------===//
// Byte-identity
//===----------------------------------------------------------------------===//

TEST(WorkerPool, IsolationIsByteInvisibleAtEveryJobCount) {
  std::string Baseline = localBaselineRender();
  for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
    IsolatedServer S(Jobs);
    ASSERT_TRUE(S.Ok);
    Client Conn;
    std::string Error;
    ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
    EXPECT_EQ(remoteCorpusRender(Conn), Baseline)
        << "--isolate-workers with --jobs " << Jobs
        << " diverged from the local Jobs=1 baseline";
  }
}

//===----------------------------------------------------------------------===//
// Containment
//===----------------------------------------------------------------------===//

TEST(WorkerPool, FiftyConsecutiveCrashesNeverKillTheDaemon) {
  IsolatedServer S(2, [](ServerOptions &O) {
    O.Worker.TestHook = [](const CheckRequestMsg &Req) {
      if (Req.Name == "crashme")
        std::abort();
    };
  });
  ASSERT_TRUE(S.Ok);
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;

  const unsigned Deaths = 55;
  for (unsigned I = 0; I < Deaths; ++I) {
    CheckResponseMsg Resp;
    ASSERT_TRUE(Conn.check(namedRequest(I, "crashme"), Resp, Error))
        << "death " << I << ": " << Error;
    expectContained(Resp, FailureKind::WorkerCrashed);
    EXPECT_NE(Resp.Report.Failures[0].Detail.find("worker died"),
              std::string::npos)
        << Resp.Report.Failures[0].Detail;
  }
  EXPECT_GE(S.counter("serve/worker/crashes"), int64_t(Deaths));
  EXPECT_GE(S.counter("serve/worker/restarts"), 1);

  // The pool healed: an innocent request on the same connection gets a
  // real report, and the daemon still answers control traffic.
  CheckResponseMsg Resp;
  ASSERT_TRUE(Conn.check(namedRequest(999, "innocent"), Resp, Error))
      << Error;
  EXPECT_TRUE(Resp.Report.Failures.empty());
  EXPECT_TRUE(Conn.ping(Error)) << Error;
}

TEST(WorkerPool, HungWorkerIsEscalatedAndContained) {
  IsolatedServer S(1, [](ServerOptions &O) {
    O.Worker.GraceMs = 200;
    O.Worker.TestHook = [](const CheckRequestMsg &Req) {
      if (Req.Name == "hangme") {
        // A worker that ignores polite requests to die: only the
        // supervisor's SIGKILL escalation can end this.
        std::signal(SIGTERM, SIG_IGN);
        for (;;)
          ::pause();
      }
    };
  });
  ASSERT_TRUE(S.Ok);
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;

  CheckRequestMsg Req = namedRequest(7, "hangme");
  Req.DeadlineMs = 200; // Response wait = deadline + grace = 400 ms.
  CheckResponseMsg Resp;
  ASSERT_TRUE(Conn.check(Req, Resp, Error)) << Error;
  expectContained(Resp, FailureKind::WorkerCrashed);
  EXPECT_NE(Resp.Report.Failures[0].Detail.find("worker hung"),
            std::string::npos)
      << Resp.Report.Failures[0].Detail;
  EXPECT_GE(S.counter("serve/worker/hangs"), 1);

  // The sole worker slot was killed and respawned; service resumes.
  ASSERT_TRUE(Conn.check(namedRequest(8, "innocent"), Resp, Error)) << Error;
  EXPECT_TRUE(Resp.Report.Failures.empty());
}

TEST(WorkerPool, OomKilledWorkerIsContained) {
  IsolatedServer S(1, [](ServerOptions &O) {
    O.Worker.TestHook = [](const CheckRequestMsg &Req) {
      if (Req.Name == "oomme")
        (void)::raise(SIGKILL); // The kernel OOM killer's signature.
    };
  });
  ASSERT_TRUE(S.Ok);
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;

  CheckResponseMsg Resp;
  ASSERT_TRUE(Conn.check(namedRequest(1, "oomme"), Resp, Error)) << Error;
  expectContained(Resp, FailureKind::WorkerCrashed);
  EXPECT_NE(Resp.Report.Failures[0].Detail.find("SIGKILL"),
            std::string::npos)
      << Resp.Report.Failures[0].Detail;

  ASSERT_TRUE(Conn.check(namedRequest(2, "innocent"), Resp, Error)) << Error;
  EXPECT_TRUE(Resp.Report.Failures.empty());
}

TEST(WorkerPool, CrashesOnOneConnectionLeaveAnotherClientUnharmed) {
  IsolatedServer S(2, [](ServerOptions &O) {
    O.Worker.TestHook = [](const CheckRequestMsg &Req) {
      if (Req.Name == "crashme")
        std::abort();
    };
  });
  ASSERT_TRUE(S.Ok);

  std::string Error;
  Client Victim, Bystander;
  ASSERT_TRUE(Victim.connect(S.Opts.SocketPath, Error)) << Error;
  ASSERT_TRUE(Bystander.connect(S.Opts.SocketPath, Error)) << Error;
  for (unsigned I = 0; I < 5; ++I) {
    CheckResponseMsg CrashResp, GoodResp;
    ASSERT_TRUE(Victim.check(namedRequest(I, "crashme"), CrashResp, Error))
        << Error;
    expectContained(CrashResp, FailureKind::WorkerCrashed);
    ASSERT_TRUE(
        Bystander.check(namedRequest(100 + I, "innocent"), GoodResp, Error))
        << Error;
    EXPECT_TRUE(GoodResp.Report.Failures.empty());
    EXPECT_NE(GoodResp.Report.Verdict, CheckVerdict::Unknown);
  }
}

TEST(WorkerPool, ExhaustedRestartBudgetParksThePoolNotTheDaemon) {
  IsolatedServer S(1, [](ServerOptions &O) {
    O.Worker.MaxRestarts = 1;
    O.Worker.TestHook = [](const CheckRequestMsg &Req) {
      if (Req.Name == "crashme")
        std::abort();
    };
  });
  ASSERT_TRUE(S.Ok);
  Client Conn;
  std::string Error;
  ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;

  // Crash 1: streak 1 <= MaxRestarts, slot respawns. Crash 2: streak 2
  // exceeds the budget, the only slot parks.
  for (unsigned I = 0; I < 2; ++I) {
    CheckResponseMsg Resp;
    ASSERT_TRUE(Conn.check(namedRequest(I, "crashme"), Resp, Error))
        << Error;
    expectContained(Resp, FailureKind::WorkerCrashed);
  }
  CheckResponseMsg Resp;
  ASSERT_TRUE(Conn.check(namedRequest(9, "innocent"), Resp, Error)) << Error;
  expectContained(Resp, FailureKind::ResourceExhausted);
  EXPECT_NE(Resp.Report.Failures[0].Detail.find("exhausted"),
            std::string::npos)
      << Resp.Report.Failures[0].Detail;
  EXPECT_EQ(S.counter("serve/worker/parked"), 1);

  // A parked pool still leaves the daemon itself alive.
  EXPECT_TRUE(Conn.ping(Error)) << Error;
}

//===----------------------------------------------------------------------===//
// Quarantine
//===----------------------------------------------------------------------===//

TEST(WorkerPool, QuarantineTripsOnContentDigestAndSurvivesRestart) {
  std::string PoisonFile = freshFilePath("poison");
  auto CrashTune = [&PoisonFile](ServerOptions &O) {
    O.Worker.QuarantineAfter = 2;
    O.Worker.QuarantineFile = PoisonFile;
    O.Worker.TestHook = [](const CheckRequestMsg &Req) {
      if (Req.Name == "poisonme")
        std::abort();
    };
  };

  {
    IsolatedServer S(1, CrashTune);
    ASSERT_TRUE(S.Ok);
    Client Conn;
    std::string Error;
    ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
    for (unsigned I = 0; I < 2; ++I) {
      CheckResponseMsg Resp;
      ASSERT_TRUE(Conn.check(namedRequest(I, "poisonme"), Resp, Error))
          << Error;
      expectContained(Resp, FailureKind::WorkerCrashed);
    }
    // Third time: quarantined up front — no worker is risked, and the
    // key is the content digest, so a renamed copy of the same input is
    // caught too.
    CheckResponseMsg Resp;
    ASSERT_TRUE(Conn.check(namedRequest(3, "renamed-copy"), Resp, Error))
        << Error;
    expectContained(Resp, FailureKind::Quarantined);
    EXPECT_EQ(S.counter("serve/worker/quarantined"), 1);
    EXPECT_GE(S.counter("serve/worker/quarantine_rejects"), 1);
  }

  // A fresh daemon, same poison file, no crash hook: the quarantine
  // persisted, so the input is still refused without running it.
  {
    IsolatedServer S(1, [&PoisonFile](ServerOptions &O) {
      O.Worker.QuarantineAfter = 2;
      O.Worker.QuarantineFile = PoisonFile;
    });
    ASSERT_TRUE(S.Ok);
    Client Conn;
    std::string Error;
    ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
    CheckResponseMsg Resp;
    ASSERT_TRUE(Conn.check(namedRequest(1, "after-restart"), Resp, Error))
        << Error;
    expectContained(Resp, FailureKind::Quarantined);
    EXPECT_GE(S.counter("serve/worker/quarantine_rejects"), 1);
  }

  // Corrupt the poison file on disk: loading degrades to an empty list
  // (fail open), the daemon starts, and the input runs normally again.
  {
    FILE *F = std::fopen(PoisonFile.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs("MCPOISON 1\nnot-a-digest-line at all\n", F);
    std::fclose(F);
  }
  {
    IsolatedServer S(1, [&PoisonFile](ServerOptions &O) {
      O.Worker.QuarantineAfter = 2;
      O.Worker.QuarantineFile = PoisonFile;
    });
    ASSERT_TRUE(S.Ok);
    Client Conn;
    std::string Error;
    ASSERT_TRUE(Conn.connect(S.Opts.SocketPath, Error)) << Error;
    CheckResponseMsg Resp;
    ASSERT_TRUE(Conn.check(namedRequest(1, "post-corruption"), Resp, Error))
        << Error;
    EXPECT_TRUE(Resp.Report.Failures.empty());
    EXPECT_NE(Resp.Report.Verdict, CheckVerdict::Unknown);
  }
  ::unlink(PoisonFile.c_str());
}

//===----------------------------------------------------------------------===//
// PoisonList (unit)
//===----------------------------------------------------------------------===//

TEST(PoisonList, RoundTripsThroughItsFile) {
  std::string Path = freshFilePath("poisonlist");
  {
    PoisonList P;
    P.open(Path);
    EXPECT_EQ(P.recordCrash(0xdeadbeefull), 1u);
    EXPECT_EQ(P.recordCrash(0xdeadbeefull), 2u);
    EXPECT_EQ(P.recordCrash(0x1ull), 1u);
    EXPECT_TRUE(P.isPoisoned(0xdeadbeefull, 2));
    EXPECT_FALSE(P.isPoisoned(0xdeadbeefull, 3));
    EXPECT_FALSE(P.isPoisoned(0x2ull, 1));
  }
  PoisonList Reloaded;
  Reloaded.open(Path);
  EXPECT_EQ(Reloaded.size(), 2u);
  EXPECT_TRUE(Reloaded.isPoisoned(0xdeadbeefull, 2));
  EXPECT_TRUE(Reloaded.isPoisoned(0x1ull, 1));
  // Threshold 0 means quarantine is disabled, whatever the counts say.
  EXPECT_FALSE(Reloaded.isPoisoned(0xdeadbeefull, 0));
  ::unlink(Path.c_str());
}

TEST(PoisonList, EveryCorruptionDegradesToAnEmptyList) {
  const char *Corrupt[] = {
      "",                                      // empty file
      "MCPOISON 2\n",                          // wrong version
      "MCPOISON 1",                            // unterminated header
      "MCPOISON 1\n00000000deadbeef\n",        // missing count
      "MCPOISON 1\n00000000DEADBEEF 3\n",      // uppercase hex
      "MCPOISON 1\n00000000deadbeef 0\n",      // zero count
      "MCPOISON 1\n00000000deadbeef 3",        // unterminated record
      "MCPOISON 1\n00000000deadbeef 9999999999\n", // count overflow
      "MCPOISON 1\n00000000deadbeef 3\n00000000deadbeef 4\n", // dup
      "garbage\n",
  };
  for (const char *Body : Corrupt) {
    std::string Path = freshFilePath("poisoncorrupt");
    FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    std::fputs(Body, F);
    std::fclose(F);
    PoisonList P;
    P.open(Path);
    EXPECT_EQ(P.size(), 0u) << "file body: " << Body;
    ::unlink(Path.c_str());
  }
}

} // namespace
