//===- AsmParserTest.cpp --------------------------------------------------===//

#include "sparc/AsmParser.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

/// The paper's Figure 1 program: summing the elements of an integer array.
const char *SumSource = R"(
  mov %o0,%o2    ! move %o0 into %o2
  clr %o0        ! set %o0 to zero
  cmp %o0,%o1    ! compare %o0 and %o1
  bge 12         ! branch to 12 if %o0 >= %o1
  clr %g3        ! set %g3 to zero
  sll %g3,2,%g2  ! %g2 = 4 x %g3
  ld [%o2+%g2],%g2
  inc %g3
  cmp %g3,%o1
  bl 6
  add %o0,%g2,%o0
  retl
  nop
)";

TEST(AsmParser, Figure1Assembles) {
  std::string Error;
  std::optional<Module> M = assemble(SumSource, &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  ASSERT_EQ(M->size(), 13u);
  // Statement 1: mov -> or %g0,%o0,%o2.
  EXPECT_EQ(M->Insts[0].Op, Opcode::OR);
  EXPECT_EQ(M->Insts[0].Rs1, G0);
  EXPECT_EQ(M->Insts[0].Rs2, O0);
  EXPECT_EQ(M->Insts[0].Rd, O2);
  // Statement 3: cmp -> subcc %o0,%o1,%g0.
  EXPECT_EQ(M->Insts[2].Op, Opcode::SUBCC);
  EXPECT_EQ(M->Insts[2].Rd, G0);
  // Statement 4: bge 12 targets the retl (index 11).
  EXPECT_EQ(M->Insts[3].Op, Opcode::BGE);
  EXPECT_EQ(M->Insts[3].Target, 11);
  // Statement 7: ld [%o2+%g2],%g2.
  EXPECT_EQ(M->Insts[6].Op, Opcode::LD);
  EXPECT_EQ(M->Insts[6].Rs1, O2);
  EXPECT_FALSE(M->Insts[6].UsesImm);
  EXPECT_EQ(M->Insts[6].Rs2, Reg(2));
  EXPECT_EQ(M->Insts[6].Rd, Reg(2));
  // Statement 10: bl 6 targets the sll (index 5).
  EXPECT_EQ(M->Insts[9].Op, Opcode::BL);
  EXPECT_EQ(M->Insts[9].Target, 5);
  // Statement 12: retl -> jmpl %o7+8,%g0.
  EXPECT_TRUE(M->Insts[11].isReturn());
  // Statement 13: nop -> sethi 0,%g0.
  EXPECT_EQ(M->Insts[12].Op, Opcode::SETHI);
  EXPECT_TRUE(M->Insts[12].Rd.isZero());
}

TEST(AsmParser, LabelsResolve) {
  std::string Error;
  std::optional<Module> M = assemble(R"(
    clr %o0
  loop:
    inc %o0
    cmp %o0, 10
    bl loop
    nop
    retl
    nop
  )", &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  EXPECT_EQ(M->lookupLabel("loop"), 1);
  EXPECT_EQ(M->Insts[3].Target, 1);
}

TEST(AsmParser, AnnulledBranch) {
  std::optional<Module> M = assemble("ba,a 1\n nop\n");
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->Insts[0].Op, Opcode::BA);
  EXPECT_TRUE(M->Insts[0].Annul);
  EXPECT_EQ(M->Insts[0].Target, 0);
}

TEST(AsmParser, MemoryOperandForms) {
  std::string Error;
  std::optional<Module> M = assemble(R"(
    ld [%o0], %o1
    ld [%o0+8], %o1
    ld [%o0-4], %o1
    ld [%fp-12], %o1
    st %o1, [%o0+%g1]
    stb %o1, [%o0]
    sth %o1, [%o0+2]
  )", &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  EXPECT_TRUE(M->Insts[0].UsesImm);
  EXPECT_EQ(M->Insts[0].Imm, 0);
  EXPECT_EQ(M->Insts[1].Imm, 8);
  EXPECT_EQ(M->Insts[2].Imm, -4);
  EXPECT_EQ(M->Insts[3].Rs1, FP);
  EXPECT_EQ(M->Insts[3].Imm, -12);
  EXPECT_FALSE(M->Insts[4].UsesImm);
  EXPECT_EQ(M->Insts[4].Rs2, Reg(1));
  EXPECT_EQ(M->Insts[5].Op, Opcode::STB);
  EXPECT_EQ(M->Insts[6].Op, Opcode::STH);
}

TEST(AsmParser, SyntheticSetSmallImmediate) {
  std::optional<Module> M = assemble("set 100, %o0\n");
  ASSERT_TRUE(M.has_value());
  ASSERT_EQ(M->size(), 1u);
  EXPECT_EQ(M->Insts[0].Op, Opcode::OR);
  EXPECT_EQ(M->Insts[0].Imm, 100);
}

TEST(AsmParser, SyntheticSetLargeImmediate) {
  std::optional<Module> M = assemble("set 0x12345678, %o0\n");
  ASSERT_TRUE(M.has_value());
  ASSERT_EQ(M->size(), 2u);
  EXPECT_EQ(M->Insts[0].Op, Opcode::SETHI);
  EXPECT_EQ(M->Insts[1].Op, Opcode::OR);
  // sethi imm22 << 10 | low 10 bits reassembles the constant.
  uint32_t Value = (static_cast<uint32_t>(M->Insts[0].Imm) << 10) |
                   static_cast<uint32_t>(M->Insts[1].Imm);
  EXPECT_EQ(Value, 0x12345678u);
}

TEST(AsmParser, SyntheticExpansions) {
  std::string Error;
  std::optional<Module> M = assemble(R"(
    tst %o0
    neg %o1
    not %o2
    dec %o3
    inc 4, %o4
    clr [%o5]
  )", &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  EXPECT_EQ(M->Insts[0].Op, Opcode::ORCC);
  EXPECT_EQ(M->Insts[1].Op, Opcode::SUB);   // neg: sub %g0,%o1,%o1
  EXPECT_EQ(M->Insts[1].Rs1, G0);
  EXPECT_EQ(M->Insts[2].Op, Opcode::XNOR);
  EXPECT_EQ(M->Insts[3].Op, Opcode::SUB);
  EXPECT_EQ(M->Insts[3].Imm, 1);
  EXPECT_EQ(M->Insts[4].Op, Opcode::ADD);
  EXPECT_EQ(M->Insts[4].Imm, 4);
  EXPECT_EQ(M->Insts[5].Op, Opcode::ST);    // clr [addr]: st %g0,[addr]
  EXPECT_TRUE(M->Insts[5].Rd.isZero());
}

TEST(AsmParser, CallLocalAndExternal) {
  std::string Error;
  std::optional<Module> M = assemble(R"(
    call helper
    nop
    call DYNINSTstartWallTimer
    nop
    retl
    nop
  helper:
    retl
    nop
  )", &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  EXPECT_EQ(M->Insts[0].Target, 6);
  EXPECT_TRUE(M->Insts[0].CalleeName.empty());
  EXPECT_EQ(M->Insts[2].Target, -1);
  EXPECT_EQ(M->Insts[2].CalleeName, "DYNINSTstartWallTimer");
  ASSERT_EQ(M->ExternalCallees.size(), 1u);
  EXPECT_EQ(M->ExternalCallees[0], "DYNINSTstartWallTimer");
  // helper is a local function entry.
  EXPECT_TRUE(M->isFunctionEntry(6));
  EXPECT_TRUE(M->isFunctionEntry(0));
}

TEST(AsmParser, SaveRestore) {
  std::string Error;
  std::optional<Module> M = assemble(R"(
    save %sp, -96, %sp
    restore
    ret
    nop
  )", &Error);
  ASSERT_TRUE(M.has_value()) << Error;
  EXPECT_EQ(M->Insts[0].Op, Opcode::SAVE);
  EXPECT_EQ(M->Insts[0].Rs1, SP);
  EXPECT_EQ(M->Insts[0].Imm, -96);
  EXPECT_EQ(M->Insts[1].Op, Opcode::RESTORE);
  EXPECT_TRUE(M->Insts[1].Rd.isZero());
  EXPECT_EQ(M->Insts[2].Rs1, I7); // ret = jmpl %i7+8.
}

TEST(AsmParser, ErrorsCarryLineNumbers) {
  std::string Error;
  EXPECT_FALSE(assemble("nop\nbogus %o0\n", &Error).has_value());
  EXPECT_NE(Error.find("line 2"), std::string::npos);

  EXPECT_FALSE(assemble("bl nowhere\nnop\n", &Error).has_value());
  EXPECT_NE(Error.find("undefined label"), std::string::npos);

  EXPECT_FALSE(assemble("add %o0, 99999, %o0\n", &Error).has_value());
  EXPECT_NE(Error.find("simm13"), std::string::npos);

  EXPECT_FALSE(assemble("bge 42\nnop\n", &Error).has_value());
  EXPECT_NE(Error.find("does not exist"), std::string::npos);
}

TEST(AsmParser, DuplicateLabelRejected) {
  std::string Error;
  EXPECT_FALSE(assemble("x:\n nop\nx:\n nop\n", &Error).has_value());
  EXPECT_NE(Error.find("duplicate label"), std::string::npos);
}

TEST(AsmParser, CommentsAndBlankLines) {
  std::optional<Module> M = assemble(R"(
    ! full-line comment
    # hash comment

    nop ! trailing
  )");
  ASSERT_TRUE(M.has_value());
  EXPECT_EQ(M->size(), 1u);
}

TEST(AsmParser, ModuleListingRendersLabels) {
  std::optional<Module> M = assemble("top:\n nop\n ba top\n nop\n");
  ASSERT_TRUE(M.has_value());
  std::string Listing = M->str();
  EXPECT_NE(Listing.find("top:"), std::string::npos);
  EXPECT_NE(Listing.find("ba 1"), std::string::npos);
}

} // namespace
