//===- EncodingPropertyTest.cpp - Randomized encode/decode round trips ----===//

#include "sparc/Encoding.h"

#include <gtest/gtest.h>

#include <cstdint>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

struct Lcg {
  uint64_t State;
  explicit Lcg(uint64_t Seed) : State(Seed) {}
  uint64_t next() {
    State = State * 6364136223846793005ull + 1442695040888963407ull;
    return State >> 33;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() %
                                     static_cast<uint64_t>(Hi - Lo + 1));
  }
};

const Opcode ArithOps[] = {
    Opcode::ADD,  Opcode::ADDCC, Opcode::SUB,   Opcode::SUBCC,
    Opcode::AND,  Opcode::ANDCC, Opcode::ANDN,  Opcode::OR,
    Opcode::ORCC, Opcode::ORN,   Opcode::XOR,   Opcode::XORCC,
    Opcode::XNOR, Opcode::SLL,   Opcode::SRL,   Opcode::SRA,
    Opcode::UMUL, Opcode::SMUL,  Opcode::UDIV,  Opcode::SDIV,
    Opcode::JMPL, Opcode::SAVE,  Opcode::RESTORE};

const Opcode MemOps[] = {Opcode::LDSB, Opcode::LDSH, Opcode::LDUB,
                         Opcode::LDUH, Opcode::LD,   Opcode::STB,
                         Opcode::STH,  Opcode::ST};

const Opcode BranchOps[] = {
    Opcode::BA,  Opcode::BN,   Opcode::BNE,  Opcode::BE,
    Opcode::BG,  Opcode::BLE,  Opcode::BGE,  Opcode::BL,
    Opcode::BGU, Opcode::BLEU, Opcode::BCC,  Opcode::BCS,
    Opcode::BPOS, Opcode::BNEG, Opcode::BVC, Opcode::BVS};

Instruction randomInstruction(Lcg &Rng) {
  Instruction I;
  switch (Rng.range(0, 3)) {
  case 0: { // Arithmetic.
    I.Op = ArithOps[Rng.range(0, std::size(ArithOps) - 1)];
    I.Rd = Reg(static_cast<uint8_t>(Rng.range(0, 31)));
    I.Rs1 = Reg(static_cast<uint8_t>(Rng.range(0, 31)));
    if (Rng.range(0, 1)) {
      I.UsesImm = true;
      I.Imm = static_cast<int32_t>(Rng.range(-4096, 4095));
    } else {
      I.Rs2 = Reg(static_cast<uint8_t>(Rng.range(0, 31)));
    }
    break;
  }
  case 1: { // Memory.
    I.Op = MemOps[Rng.range(0, std::size(MemOps) - 1)];
    I.Rd = Reg(static_cast<uint8_t>(Rng.range(0, 31)));
    I.Rs1 = Reg(static_cast<uint8_t>(Rng.range(0, 31)));
    if (Rng.range(0, 1)) {
      I.UsesImm = true;
      I.Imm = static_cast<int32_t>(Rng.range(-4096, 4095));
    } else {
      I.Rs2 = Reg(static_cast<uint8_t>(Rng.range(0, 31)));
    }
    break;
  }
  case 2: { // Branch.
    I.Op = BranchOps[Rng.range(0, std::size(BranchOps) - 1)];
    I.Annul = Rng.range(0, 1) != 0;
    I.Target = static_cast<int32_t>(Rng.range(0, 4095));
    break;
  }
  default: { // Sethi / call.
    if (Rng.range(0, 1)) {
      I.Op = Opcode::SETHI;
      I.Rd = Reg(static_cast<uint8_t>(Rng.range(0, 31)));
      I.UsesImm = true;
      I.Imm = static_cast<int32_t>(Rng.range(0, 0x3FFFFF));
    } else {
      I.Op = Opcode::CALL;
      I.Target = static_cast<int32_t>(Rng.range(0, 100000));
    }
    break;
  }
  }
  return I;
}

class EncodingRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EncodingRoundTrip, RandomInstructionsSurvive) {
  Lcg Rng(0xC0FFEEull + static_cast<uint64_t>(GetParam()) * 104729ull);
  for (int Iter = 0; Iter < 200; ++Iter) {
    Instruction I = randomInstruction(Rng);
    uint32_t Index = static_cast<uint32_t>(Rng.range(0, 2048));
    std::optional<uint32_t> Word = encode(I, Index);
    ASSERT_TRUE(Word.has_value())
        << I.str() << " at " << Index << " (iter " << Iter << ")";
    std::optional<Instruction> Back = decode(*Word, Index);
    ASSERT_TRUE(Back.has_value()) << I.str();
    EXPECT_EQ(Back->Op, I.Op) << I.str();
    if (isBranch(I.Op) || I.Op == Opcode::CALL) {
      EXPECT_EQ(Back->Target, I.Target) << I.str();
      if (isBranch(I.Op)) {
        EXPECT_EQ(Back->Annul, I.Annul) << I.str();
      }
      continue;
    }
    EXPECT_EQ(Back->Rd, I.Rd) << I.str();
    if (I.Op == Opcode::SETHI) {
      EXPECT_EQ(Back->Imm, I.Imm) << I.str();
      continue;
    }
    EXPECT_EQ(Back->Rs1, I.Rs1) << I.str();
    EXPECT_EQ(Back->UsesImm, I.UsesImm) << I.str();
    if (I.UsesImm)
      EXPECT_EQ(Back->Imm, I.Imm) << I.str();
    else
      EXPECT_EQ(Back->Rs2, I.Rs2) << I.str();
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, EncodingRoundTrip, ::testing::Range(0, 8));

} // namespace
