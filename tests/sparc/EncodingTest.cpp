//===- EncodingTest.cpp ---------------------------------------------------===//

#include "sparc/AsmParser.h"
#include "sparc/Encoding.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

/// Encode/decode round trip for a single instruction at a given index.
void expectRoundTrip(const Instruction &Inst, uint32_t Index = 0) {
  std::optional<uint32_t> Word = encode(Inst, Index);
  ASSERT_TRUE(Word.has_value()) << Inst.str();
  std::optional<Instruction> Back = decode(*Word, Index);
  ASSERT_TRUE(Back.has_value()) << Inst.str();
  EXPECT_EQ(Back->Op, Inst.Op) << Inst.str();
  EXPECT_EQ(Back->Rd, Inst.Rd) << Inst.str();
  if (Inst.Op != Opcode::CALL && Inst.Op != Opcode::SETHI &&
      !isBranch(Inst.Op)) {
    EXPECT_EQ(Back->Rs1, Inst.Rs1) << Inst.str();
    EXPECT_EQ(Back->UsesImm, Inst.UsesImm) << Inst.str();
    if (Inst.UsesImm)
      EXPECT_EQ(Back->Imm, Inst.Imm) << Inst.str();
    else
      EXPECT_EQ(Back->Rs2, Inst.Rs2) << Inst.str();
  }
  if (isBranch(Inst.Op) || Inst.Op == Opcode::CALL) {
    EXPECT_EQ(Back->Target, Inst.Target) << Inst.str();
  }
  if (isBranch(Inst.Op)) {
    EXPECT_EQ(Back->Annul, Inst.Annul) << Inst.str();
  }
}

TEST(Encoding, ArithmeticRoundTrip) {
  Instruction I;
  I.Op = Opcode::ADD;
  I.Rs1 = O0;
  I.Rs2 = Reg(2);
  I.Rd = O0;
  expectRoundTrip(I);

  I.Op = Opcode::SUBCC;
  I.UsesImm = true;
  I.Imm = -4096;
  expectRoundTrip(I);
  I.Imm = 4095;
  expectRoundTrip(I);
}

TEST(Encoding, SimmRangeEnforced) {
  Instruction I;
  I.Op = Opcode::ADD;
  I.Rs1 = O0;
  I.Rd = O0;
  I.UsesImm = true;
  I.Imm = 4096;
  EXPECT_FALSE(encode(I, 0).has_value());
  I.Imm = -4097;
  EXPECT_FALSE(encode(I, 0).has_value());
}

TEST(Encoding, MemoryRoundTrip) {
  Instruction I;
  I.Op = Opcode::LD;
  I.Rs1 = O2;
  I.Rs2 = Reg(2);
  I.Rd = Reg(2);
  expectRoundTrip(I);

  I.Op = Opcode::STB;
  I.UsesImm = true;
  I.Imm = -1;
  expectRoundTrip(I);
}

TEST(Encoding, BranchDisplacement) {
  Instruction I;
  I.Op = Opcode::BL;
  I.Target = 5;
  expectRoundTrip(I, /*Index=*/9); // Backward branch.
  I.Target = 100;
  expectRoundTrip(I, /*Index=*/3); // Forward branch.
  I.Annul = true;
  expectRoundTrip(I, /*Index=*/3);
}

TEST(Encoding, CallDisplacement) {
  Instruction I;
  I.Op = Opcode::CALL;
  I.Target = 42;
  expectRoundTrip(I, /*Index=*/7);
  I.Target = 0;
  expectRoundTrip(I, /*Index=*/100);
}

TEST(Encoding, ExternalCallRejected) {
  Instruction I;
  I.Op = Opcode::CALL;
  I.Target = -1;
  I.CalleeName = "printf";
  EXPECT_FALSE(encode(I, 0).has_value());
}

TEST(Encoding, SethiRoundTrip) {
  Instruction I;
  I.Op = Opcode::SETHI;
  I.Rd = Reg(1);
  I.UsesImm = true;
  I.Imm = 0x3FFFFF;
  expectRoundTrip(I);
  I.Imm = 0;
  expectRoundTrip(I);
}

TEST(Encoding, SaveRestoreJmplRoundTrip) {
  Instruction I;
  I.Op = Opcode::SAVE;
  I.Rs1 = SP;
  I.Rd = SP;
  I.UsesImm = true;
  I.Imm = -96;
  expectRoundTrip(I);

  I.Op = Opcode::RESTORE;
  I.UsesImm = false;
  I.Rs1 = G0;
  I.Rs2 = G0;
  I.Rd = G0;
  expectRoundTrip(I);

  I.Op = Opcode::JMPL;
  I.Rs1 = O7;
  I.UsesImm = true;
  I.Imm = 8;
  I.Rd = G0;
  expectRoundTrip(I);
}

TEST(Encoding, UnknownWordRejected) {
  // op=00, op2=011 is unimplemented (FBfcc and friends).
  EXPECT_FALSE(decode(0x00C00000u, 0).has_value());
  // op=10 with an op3 we do not support (e.g. 0x29, RDPSR).
  EXPECT_FALSE(decode(0x81480000u | (0x29u << 19), 0).has_value());
}

/// Property: every instruction produced by assembling a local-only module
/// survives a module-level encode/decode round trip.
TEST(Encoding, ModuleRoundTripMatchesAssembler) {
  const char *Source = R"(
    mov %o0,%o2
    clr %o0
    cmp %o0,%o1
    bge 12
    clr %g3
    sll %g3,2,%g2
    ld [%o2+%g2],%g2
    inc %g3
    cmp %g3,%o1
    bl 6
    add %o0,%g2,%o0
    retl
    nop
  )";
  std::optional<Module> M = assemble(Source);
  ASSERT_TRUE(M.has_value());
  std::optional<std::vector<uint32_t>> Words = encodeModule(*M);
  ASSERT_TRUE(Words.has_value());
  ASSERT_EQ(Words->size(), M->size());
  std::optional<Module> Decoded = decodeModule(*Words);
  ASSERT_TRUE(Decoded.has_value());
  ASSERT_EQ(Decoded->size(), M->size());
  for (uint32_t I = 0; I < M->size(); ++I) {
    EXPECT_EQ(Decoded->Insts[I].Op, M->Insts[I].Op) << "index " << I;
    EXPECT_EQ(Decoded->Insts[I].Target, M->Insts[I].Target) << "index " << I;
    EXPECT_EQ(Decoded->Insts[I].str(), M->Insts[I].str()) << "index " << I;
  }
}

TEST(Encoding, DecodeModuleRejectsOutOfRangeTarget) {
  // A branch to instruction 100 in a 2-word module.
  Instruction I;
  I.Op = Opcode::BA;
  I.Target = 100;
  std::optional<uint32_t> W = encode(I, 0);
  ASSERT_TRUE(W.has_value());
  Instruction Nop;
  Nop.Op = Opcode::SETHI;
  Nop.Rd = G0;
  Nop.UsesImm = true;
  Nop.Imm = 0;
  std::optional<uint32_t> W2 = encode(Nop, 1);
  ASSERT_TRUE(W2.has_value());
  EXPECT_FALSE(decodeModule({*W, *W2}).has_value());
}

} // namespace
