//===- InstructionTest.cpp ------------------------------------------------===//

#include "sparc/Instruction.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

TEST(Instruction, OpcodePredicates) {
  EXPECT_TRUE(isLoad(Opcode::LD));
  EXPECT_TRUE(isLoad(Opcode::LDSB));
  EXPECT_FALSE(isLoad(Opcode::ST));
  EXPECT_TRUE(isStore(Opcode::STH));
  EXPECT_FALSE(isStore(Opcode::LDUH));
  EXPECT_TRUE(isBranch(Opcode::BA));
  EXPECT_TRUE(isBranch(Opcode::BLEU));
  EXPECT_FALSE(isBranch(Opcode::CALL));
  EXPECT_TRUE(isConditionalBranch(Opcode::BL));
  EXPECT_FALSE(isConditionalBranch(Opcode::BA));
  EXPECT_FALSE(isConditionalBranch(Opcode::BN));
  EXPECT_TRUE(setsIcc(Opcode::SUBCC));
  EXPECT_TRUE(setsIcc(Opcode::ORCC));
  EXPECT_FALSE(setsIcc(Opcode::SUB));
}

TEST(Instruction, MemAccessSize) {
  EXPECT_EQ(memAccessSize(Opcode::LDSB), 1u);
  EXPECT_EQ(memAccessSize(Opcode::LDUB), 1u);
  EXPECT_EQ(memAccessSize(Opcode::LDSH), 2u);
  EXPECT_EQ(memAccessSize(Opcode::LDUH), 2u);
  EXPECT_EQ(memAccessSize(Opcode::LD), 4u);
  EXPECT_EQ(memAccessSize(Opcode::STB), 1u);
  EXPECT_EQ(memAccessSize(Opcode::STH), 2u);
  EXPECT_EQ(memAccessSize(Opcode::ST), 4u);
}

TEST(Instruction, SignedLoads) {
  EXPECT_TRUE(isSignedLoad(Opcode::LDSB));
  EXPECT_TRUE(isSignedLoad(Opcode::LDSH));
  EXPECT_FALSE(isSignedLoad(Opcode::LDUB));
  EXPECT_FALSE(isSignedLoad(Opcode::LD));
}

TEST(Instruction, ReturnDetection) {
  Instruction I;
  I.Op = Opcode::JMPL;
  I.Rs1 = O7;
  I.UsesImm = true;
  I.Imm = 8;
  I.Rd = G0;
  EXPECT_TRUE(I.isReturn()); // retl.
  I.Rs1 = I7;
  EXPECT_TRUE(I.isReturn()); // ret.
  I.Imm = 12;
  EXPECT_FALSE(I.isReturn());
  I.Imm = 8;
  I.Rs1 = O0;
  EXPECT_FALSE(I.isReturn());
}

TEST(Instruction, ControlTransferDetection) {
  Instruction I;
  I.Op = Opcode::ADD;
  EXPECT_FALSE(I.isControlTransfer());
  I.Op = Opcode::BL;
  EXPECT_TRUE(I.isControlTransfer());
  I.Op = Opcode::CALL;
  EXPECT_TRUE(I.isControlTransfer());
  I.Op = Opcode::JMPL;
  EXPECT_TRUE(I.isControlTransfer());
}

TEST(Instruction, PrintsArithmetic) {
  Instruction I;
  I.Op = Opcode::ADD;
  I.Rs1 = O0;
  I.Rs2 = Reg(2);
  I.Rd = O0;
  EXPECT_EQ(I.str(), "add %o0,%g2,%o0");
  I.UsesImm = true;
  I.Imm = -4;
  EXPECT_EQ(I.str(), "add %o0,-4,%o0");
}

TEST(Instruction, PrintsMemory) {
  Instruction I;
  I.Op = Opcode::LD;
  I.Rs1 = O2;
  I.Rs2 = Reg(2);
  I.Rd = Reg(2);
  EXPECT_EQ(I.str(), "ld [%o2+%g2],%g2");
  I.Op = Opcode::ST;
  I.UsesImm = true;
  I.Imm = 8;
  EXPECT_EQ(I.str(), "st %g2,[%o2+8]");
}

TEST(Instruction, PrintsBranch) {
  Instruction I;
  I.Op = Opcode::BGE;
  I.Target = 11;
  EXPECT_EQ(I.str(), "bge 12"); // 1-based listing numbers.
  I.Annul = true;
  EXPECT_EQ(I.str(), "bge,a 12");
}

TEST(Instruction, PrintsCall) {
  Instruction I;
  I.Op = Opcode::CALL;
  I.CalleeName = "hash";
  EXPECT_EQ(I.str(), "call hash");
  I.CalleeName.clear();
  I.Target = 4;
  EXPECT_EQ(I.str(), "call 5");
}

TEST(Instruction, OpcodeNamesAreCanonical) {
  EXPECT_STREQ(opcodeName(Opcode::LDSB), "ldsb");
  EXPECT_STREQ(opcodeName(Opcode::SUBCC), "subcc");
  EXPECT_STREQ(opcodeName(Opcode::BLEU), "bleu");
  EXPECT_STREQ(opcodeName(Opcode::RESTORE), "restore");
}

} // namespace
