//===- InterpreterTest.cpp - Concrete execution of the subset -------------===//

#include "sparc/AsmParser.h"
#include "sparc/Interpreter.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

Module assembleOrDie(const char *Source) {
  std::string Error;
  std::optional<Module> M = assemble(Source, &Error);
  EXPECT_TRUE(M.has_value()) << Error;
  return std::move(*M);
}

TEST(Interpreter, StraightLineArithmetic) {
  Module M = assembleOrDie(R"(
  mov 6,%o0
  mov 7,%o1
  smul %o0,%o1,%o2
  add %o2,%o2,%o3
  retl
  nop
)");
  Interpreter I(M);
  Interpreter::Result R = I.run();
  EXPECT_EQ(R.Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O2), 42u);
  EXPECT_EQ(I.reg(O3), 84u);
}

TEST(Interpreter, DelaySlotExecutesOnTakenBranch) {
  Module M = assembleOrDie(R"(
  clr %o0
  cmp %o0,0
  be 6
  mov 9,%o1     ! delay slot: must execute
  mov 1,%o2     ! skipped by the branch
  retl
  nop
)");
  Interpreter I(M);
  EXPECT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 9u);
  EXPECT_EQ(I.reg(O2), 0u);
}

TEST(Interpreter, AnnulledBranchSkipsDelayWhenUntaken) {
  Module M = assembleOrDie(R"(
  mov 1,%o0
  cmp %o0,0
  be,a 6
  mov 9,%o1     ! annulled: must NOT execute (branch untaken)
  mov 2,%o2
  retl
  nop
)");
  Interpreter I(M);
  EXPECT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 0u);
  EXPECT_EQ(I.reg(O2), 2u);
}

TEST(Interpreter, SignedBranchSemantics) {
  // Computes max(%o0, %o1) via bl with negative numbers.
  Module M = assembleOrDie(R"(
  cmp %o0,%o1
  bl 5
  nop
  retl           ! %o0 already the max
  nop
  mov %o1,%o0
  retl
  nop
)");
  Interpreter I(M);
  I.setReg(O0, static_cast<uint32_t>(-5));
  I.setReg(O1, 3);
  EXPECT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O0), 3u);
}

TEST(Interpreter, MemoryRoundTrip) {
  Module M = assembleOrDie(R"(
  ld [%o0],%g1
  inc %g1
  st %g1,[%o0+4]
  stb %g1,[%o0+8]
  ldsb [%o0+8],%g2
  retl
  nop
)");
  Interpreter I(M);
  I.mapRegion(0x1000, 64);
  I.write32(0x1000, 0x1234);
  I.setReg(O0, 0x1000);
  EXPECT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.read32(0x1004), 0x1235u);
  EXPECT_EQ(I.read8(0x1008), 0x35u);
  EXPECT_EQ(I.reg(Reg(2)), 0x35u);
}

TEST(Interpreter, NullDereferenceTraps) {
  Module M = assembleOrDie(R"(
  clr %o0
  ld [%o0],%g1
  retl
  nop
)");
  Interpreter I(M);
  Interpreter::Result R = I.run();
  EXPECT_EQ(R.Reason, StopReason::UnmappedAccess);
  EXPECT_EQ(R.FaultAddr, 0u);
  EXPECT_EQ(R.FaultLine, 3u); // 1-based line in the source text.
}

TEST(Interpreter, MisalignmentTraps) {
  Module M = assembleOrDie(R"(
  ld [%o0+2],%g1
  retl
  nop
)");
  Interpreter I(M);
  I.mapRegion(0x1000, 16);
  I.setReg(O0, 0x1000);
  EXPECT_EQ(I.run().Reason, StopReason::MisalignedAccess);
}

TEST(Interpreter, DivisionByZeroTraps) {
  Module M = assembleOrDie(R"(
  mov 10,%o0
  clr %o1
  udiv %o0,%o1,%o2
  retl
  nop
)");
  Interpreter I(M);
  EXPECT_EQ(I.run().Reason, StopReason::DivisionByZero);
}

TEST(Interpreter, SaveRestoreWindows) {
  Module M = assembleOrDie(R"(
  mov 11,%o0
  mov %o7,%g1     ! a non-leaf caller must preserve its return address
  call helper
  nop
  add %o0,1,%o3   ! 23
  mov %g1,%o7
  retl
  nop
helper:
  save %sp,-96,%sp
  add %i0,%i0,%i0 ! return 22 through the window overlap
  ret
  restore
)");
  Interpreter I(M);
  EXPECT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O3), 23u);
}

TEST(Interpreter, WindowUnderflowTraps) {
  Module M = assembleOrDie(R"(
  restore
  retl
  nop
)");
  Interpreter I(M);
  EXPECT_EQ(I.run().Reason, StopReason::WindowUnderflow);
}

TEST(Interpreter, HostCallWithDelaySlotArgument) {
  Module M = assembleOrDie(R"(
  mov %o7,%g1
  call double_it
  mov 21,%o0      ! argument set in the delay slot
  mov %o0,%o4
  mov %g1,%o7
  retl
  nop
)");
  Interpreter I(M);
  I.registerHost("double_it", [](Interpreter &It) {
    It.setReg(O0, It.reg(O0) * 2);
  });
  EXPECT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O4), 42u);
}

TEST(Interpreter, UnknownHostCallStops) {
  Module M = assembleOrDie(R"(
  call mystery
  nop
  retl
  nop
)");
  Interpreter I(M);
  EXPECT_EQ(I.run().Reason, StopReason::UnknownCallee);
}

TEST(Interpreter, StepLimit) {
  Module M = assembleOrDie(R"(
spin:
  ba spin
  nop
)");
  Interpreter I(M);
  EXPECT_EQ(I.run(100).Reason, StopReason::StepLimit);
}

TEST(Interpreter, LoopComputesTriangularNumber) {
  Module M = assembleOrDie(R"(
  clr %o2
  clr %g1
loop:
  cmp %g1,%o0
  bge done
  nop
  inc %g1
  add %o2,%g1,%o2
  ba loop
  nop
done:
  mov %o2,%o0
  retl
  nop
)");
  Interpreter I(M);
  I.setReg(O0, 10);
  EXPECT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O0), 55u);
}

TEST(Interpreter, ShiftCountsUseOnlyLowFiveBits) {
  // SPARC V8 consumes only the low five bits of a shift count
  // (sparc::shiftCount): shifting by 33 shifts by 1. The same helper
  // feeds the checker's constant folds, Wlp scaling, and the known-bits
  // transfers, so the layers cannot disagree about oversized counts.
  Module M = assembleOrDie(R"(
  mov 33,%o5
  mov 6,%o0
  sll %o0,%o5,%o1
  mov -8,%o2
  srl %o2,%o5,%o3
  sra %o2,%o5,%o4
  sll %o0,33,%g1   ! immediate form takes the same path
  retl
  nop
)");
  Interpreter I(M);
  EXPECT_EQ(I.run().Reason, StopReason::Returned);
  EXPECT_EQ(I.reg(O1), 12u);
  EXPECT_EQ(I.reg(O3), 0xFFFFFFF8u >> 1);
  EXPECT_EQ(I.reg(O4), 0xFFFFFFFCu);
  EXPECT_EQ(I.reg(Reg(1)), 12u); // %g1
}

} // namespace
