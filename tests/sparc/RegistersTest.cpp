//===- RegistersTest.cpp --------------------------------------------------===//

#include "sparc/Registers.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::sparc;

namespace {

TEST(Registers, Groups) {
  EXPECT_TRUE(Reg(0).isGlobal());
  EXPECT_TRUE(Reg(7).isGlobal());
  EXPECT_TRUE(Reg(8).isOut());
  EXPECT_TRUE(Reg(15).isOut());
  EXPECT_TRUE(Reg(16).isLocal());
  EXPECT_TRUE(Reg(23).isLocal());
  EXPECT_TRUE(Reg(24).isIn());
  EXPECT_TRUE(Reg(31).isIn());
  EXPECT_TRUE(G0.isZero());
  EXPECT_FALSE(O0.isZero());
}

TEST(Registers, Names) {
  EXPECT_EQ(Reg(0).name(), "%g0");
  EXPECT_EQ(Reg(3).name(), "%g3");
  EXPECT_EQ(Reg(8).name(), "%o0");
  EXPECT_EQ(Reg(14).name(), "%sp");
  EXPECT_EQ(Reg(15).name(), "%o7");
  EXPECT_EQ(Reg(17).name(), "%l1");
  EXPECT_EQ(Reg(30).name(), "%fp");
  EXPECT_EQ(Reg(31).name(), "%i7");
}

TEST(Registers, ParseCanonical) {
  EXPECT_EQ(parseReg("%g0"), G0);
  EXPECT_EQ(parseReg("%o2"), O2);
  EXPECT_EQ(parseReg("%l0"), L0);
  EXPECT_EQ(parseReg("%i1"), I1);
  EXPECT_EQ(parseReg("%sp"), SP);
  EXPECT_EQ(parseReg("%fp"), FP);
  EXPECT_EQ(parseReg(" %o0 "), O0);
}

TEST(Registers, ParseNumericAlias) {
  EXPECT_EQ(parseReg("%r0"), Reg(0));
  EXPECT_EQ(parseReg("%r14"), SP);
  EXPECT_EQ(parseReg("%r31"), I7);
  EXPECT_FALSE(parseReg("%r32").has_value());
}

TEST(Registers, ParseRejectsGarbage) {
  EXPECT_FALSE(parseReg("").has_value());
  EXPECT_FALSE(parseReg("%").has_value());
  EXPECT_FALSE(parseReg("g0").has_value());
  EXPECT_FALSE(parseReg("%g8").has_value());
  EXPECT_FALSE(parseReg("%x1").has_value());
  EXPECT_FALSE(parseReg("%o12").has_value());
}

/// Round-trip name -> parse -> number for every register.
class RegRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(RegRoundTrip, NameParsesBack) {
  Reg R(static_cast<uint8_t>(GetParam()));
  std::optional<Reg> Back = parseReg(R.name());
  ASSERT_TRUE(Back.has_value());
  EXPECT_EQ(*Back, R);
}

INSTANTIATE_TEST_SUITE_P(AllRegs, RegRoundTrip, ::testing::Range(0, 32));

} // namespace
