//===- ArenaTest.cpp - Bump-pointer arena -------------------------------===//

#include "support/Arena.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

using mcsafe::support::Arena;

namespace {

TEST(Arena, AlignmentHonored) {
  Arena A;
  for (size_t Align : {1u, 2u, 4u, 8u, 16u, 64u}) {
    void *P = A.allocate(3, Align);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(P) % Align, 0u)
        << "align " << Align;
  }
}

TEST(Arena, AllocationsAreDisjointAndWritable) {
  Arena A(256); // Small chunks to force several.
  std::vector<unsigned char *> Ps;
  for (int I = 0; I < 100; ++I) {
    auto *P = static_cast<unsigned char *>(A.allocate(40, 8));
    std::memset(P, I, 40);
    Ps.push_back(P);
  }
  for (int I = 0; I < 100; ++I)
    for (int B = 0; B < 40; ++B)
      ASSERT_EQ(Ps[I][B], static_cast<unsigned char>(I));
}

TEST(Arena, ResetRecyclesChunks) {
  Arena A(1024);
  for (int I = 0; I < 50; ++I)
    A.allocate(100, 8);
  size_t Reserved = A.bytesReserved();
  EXPECT_GT(Reserved, 0u);
  A.reset();
  EXPECT_EQ(A.bytesAllocated(), 0u);
  EXPECT_EQ(A.bytesReserved(), Reserved); // Chunks retained.
  // The same workload fits in the retained chunks: no new reservation.
  for (int I = 0; I < 50; ++I)
    A.allocate(100, 8);
  EXPECT_EQ(A.bytesReserved(), Reserved);
}

TEST(Arena, OversizedRequestGetsDedicatedChunk) {
  Arena A(256);
  auto *P = static_cast<unsigned char *>(A.allocate(10000, 8));
  std::memset(P, 0xAB, 10000);
  EXPECT_GE(A.bytesReserved(), 10000u);
  // Small allocations still work afterwards.
  void *Q = A.allocate(16, 8);
  EXPECT_NE(Q, nullptr);
}

TEST(Arena, ByteAccounting) {
  Arena A;
  EXPECT_EQ(A.bytesAllocated(), 0u);
  A.allocate(64, 8);
  A.allocate(64, 8);
  EXPECT_GE(A.bytesAllocated(), 128u);
}

TEST(Arena, CreateAndArray) {
  Arena A;
  struct Pair {
    int X, Y;
  };
  Pair *P = A.create<Pair>(Pair{3, 4});
  EXPECT_EQ(P->X, 3);
  EXPECT_EQ(P->Y, 4);
  int64_t *Arr = A.allocateArray<int64_t>(32);
  for (int I = 0; I < 32; ++I)
    Arr[I] = I * I;
  EXPECT_EQ(Arr[31], 31 * 31);
}

} // namespace
