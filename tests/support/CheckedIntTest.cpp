//===- CheckedIntTest.cpp -------------------------------------------------===//

#include "support/CheckedInt.h"

#include <gtest/gtest.h>

#include <limits>

using namespace mcsafe;

namespace {

TEST(CheckedInt, AddDetectsOverflow) {
  EXPECT_EQ(checkedAdd(2, 3), 5);
  EXPECT_EQ(checkedAdd(-2, -3), -5);
  EXPECT_FALSE(checkedAdd(INT64_MAX, 1).has_value());
  EXPECT_FALSE(checkedAdd(INT64_MIN, -1).has_value());
  EXPECT_EQ(checkedAdd(INT64_MAX, 0), INT64_MAX);
}

TEST(CheckedInt, SubDetectsOverflow) {
  EXPECT_EQ(checkedSub(2, 3), -1);
  EXPECT_FALSE(checkedSub(INT64_MIN, 1).has_value());
  EXPECT_FALSE(checkedSub(0, INT64_MIN).has_value());
}

TEST(CheckedInt, MulDetectsOverflow) {
  EXPECT_EQ(checkedMul(7, -6), -42);
  EXPECT_FALSE(checkedMul(INT64_MAX, 2).has_value());
  EXPECT_FALSE(checkedMul(INT64_MIN, -1).has_value());
  EXPECT_EQ(checkedMul(INT64_MIN, 1), INT64_MIN);
}

TEST(CheckedInt, NegDetectsOverflow) {
  EXPECT_EQ(checkedNeg(5), -5);
  EXPECT_FALSE(checkedNeg(INT64_MIN).has_value());
}

TEST(CheckedInt, Gcd) {
  EXPECT_EQ(gcdInt64(0, 0), 0);
  EXPECT_EQ(gcdInt64(0, 7), 7);
  EXPECT_EQ(gcdInt64(12, 18), 6);
  EXPECT_EQ(gcdInt64(-12, 18), 6);
  EXPECT_EQ(gcdInt64(12, -18), 6);
  EXPECT_EQ(gcdInt64(-12, -18), 6);
  EXPECT_EQ(gcdInt64(1, 999), 1);
}

TEST(CheckedInt, FloorDiv) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(7, -2), -4);
  EXPECT_EQ(floorDiv(-7, -2), 3);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
}

TEST(CheckedInt, CeilDiv) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(7, -2), -3);
  EXPECT_EQ(ceilDiv(-7, -2), 4);
  EXPECT_EQ(ceilDiv(6, 3), 2);
}

TEST(CheckedInt, FloorMod) {
  EXPECT_EQ(floorMod(7, 4), 3);
  EXPECT_EQ(floorMod(-7, 4), 1);
  EXPECT_EQ(floorMod(7, -4), -1);
  EXPECT_EQ(floorMod(-7, -4), -3);
  EXPECT_EQ(floorMod(8, 4), 0);
  EXPECT_EQ(floorMod(-8, 4), 0);
}

/// floorDiv/floorMod form a Euclidean pair: a == b*floorDiv(a,b) +
/// floorMod(a,b), with 0 <= floorMod(a,b) < |b| for b > 0.
class FloorDivModProperty
    : public ::testing::TestWithParam<std::pair<int64_t, int64_t>> {};

TEST_P(FloorDivModProperty, PairIdentity) {
  auto [A, B] = GetParam();
  ASSERT_NE(B, 0);
  EXPECT_EQ(A, B * floorDiv(A, B) + floorMod(A, B));
  if (B > 0) {
    EXPECT_GE(floorMod(A, B), 0);
    EXPECT_LT(floorMod(A, B), B);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FloorDivModProperty,
    ::testing::Values(std::pair<int64_t, int64_t>{17, 5},
                      std::pair<int64_t, int64_t>{-17, 5},
                      std::pair<int64_t, int64_t>{17, -5},
                      std::pair<int64_t, int64_t>{-17, -5},
                      std::pair<int64_t, int64_t>{0, 3},
                      std::pair<int64_t, int64_t>{1000000007, 97},
                      std::pair<int64_t, int64_t>{-1000000007, 97},
                      std::pair<int64_t, int64_t>{INT64_MAX, 2},
                      std::pair<int64_t, int64_t>{INT64_MAX - 1, 7}));

} // namespace
