//===- DiagnosticsTest.cpp ------------------------------------------------===//

#include "support/Diagnostics.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

TEST(Diagnostics, StartsEmpty) {
  DiagnosticEngine Engine;
  EXPECT_FALSE(Engine.hasViolations());
  EXPECT_FALSE(Engine.hasFatal());
  EXPECT_TRUE(Engine.diagnostics().empty());
  EXPECT_EQ(Engine.str(), "");
}

TEST(Diagnostics, RecordsViolation) {
  DiagnosticEngine Engine;
  Engine.report(DiagSeverity::Violation, SafetyKind::ArrayBounds,
                "index may exceed 4n", 7, 7);
  EXPECT_TRUE(Engine.hasViolations());
  EXPECT_FALSE(Engine.hasFatal());
  EXPECT_EQ(Engine.countOfKind(SafetyKind::ArrayBounds), 1u);
  EXPECT_EQ(Engine.countOfKind(SafetyKind::Alignment), 0u);
  const Diagnostic &D = Engine.diagnostics().front();
  EXPECT_EQ(D.Message, "index may exceed 4n");
  EXPECT_EQ(D.SourceLine, 7u);
}

TEST(Diagnostics, NotesAreNotViolations) {
  DiagnosticEngine Engine;
  Engine.note("synthesized invariant: n > %g3");
  EXPECT_FALSE(Engine.hasViolations());
  EXPECT_EQ(Engine.diagnostics().size(), 1u);
}

TEST(Diagnostics, FatalIsDetected) {
  DiagnosticEngine Engine;
  Engine.fatal("bad assembly");
  EXPECT_TRUE(Engine.hasFatal());
  EXPECT_FALSE(Engine.hasViolations());
}

TEST(Diagnostics, StrRendersKindAndLine) {
  DiagnosticEngine Engine;
  Engine.report(DiagSeverity::Violation, SafetyKind::NullDereference,
                "pointer may be null", 3, 12);
  std::string S = Engine.str();
  EXPECT_NE(S.find("violation"), std::string::npos);
  EXPECT_NE(S.find("null-dereference"), std::string::npos);
  EXPECT_NE(S.find("line 12"), std::string::npos);
  EXPECT_NE(S.find("pointer may be null"), std::string::npos);
}

TEST(Diagnostics, CountOnlyCountsViolations) {
  DiagnosticEngine Engine;
  Engine.report(DiagSeverity::Warning, SafetyKind::ArrayBounds, "w");
  Engine.report(DiagSeverity::Violation, SafetyKind::ArrayBounds, "v1");
  Engine.report(DiagSeverity::Violation, SafetyKind::ArrayBounds, "v2");
  EXPECT_EQ(Engine.countOfKind(SafetyKind::ArrayBounds), 2u);
}

TEST(Diagnostics, ClearResets) {
  DiagnosticEngine Engine;
  Engine.report(DiagSeverity::Violation, SafetyKind::AccessPolicy, "x");
  Engine.clear();
  EXPECT_FALSE(Engine.hasViolations());
  EXPECT_TRUE(Engine.diagnostics().empty());
}

TEST(Diagnostics, KindNamesAreStable) {
  EXPECT_STREQ(safetyKindName(SafetyKind::ArrayBounds), "array-bounds");
  EXPECT_STREQ(safetyKindName(SafetyKind::StackDiscipline),
               "stack-discipline");
  EXPECT_STREQ(severityName(DiagSeverity::Violation), "violation");
}

} // namespace
