//===- FaultInjectionTest.cpp ---------------------------------------------===//
//
// The fault plan's schedule must be a pure function of (seed, site, call
// index): chaos runs are reproducible from the seed alone.
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjection.h"

#include <gtest/gtest.h>

#include <vector>

using namespace mcsafe::support;

namespace {

std::vector<bool> schedule(FaultPlan &Plan, const char *Site, int N) {
  std::vector<bool> S;
  S.reserve(N);
  for (int I = 0; I < N; ++I)
    S.push_back(Plan.shouldFail(Site));
  return S;
}

TEST(FaultInjection, SameSeedSameSchedule) {
  FaultPlan A(42), B(42);
  EXPECT_EQ(schedule(A, "prover/sat", 200), schedule(B, "prover/sat", 200));
  EXPECT_EQ(schedule(A, "cache/lookup", 200),
            schedule(B, "cache/lookup", 200));
}

TEST(FaultInjection, EverySiteFiresWithinItsPeriod) {
  // Periods are bounded (<= 37 calls), so 100 calls at any site must
  // fire at least twice.
  FaultPlan Plan(7);
  for (const char *Site :
       {"prover/sat", "cache/lookup", "cache/insert", "pool/spawn",
        "alloc/formula"}) {
    std::vector<bool> S = schedule(Plan, Site, 100);
    int Fired = 0;
    for (bool B : S)
      Fired += B;
    EXPECT_GE(Fired, 2) << Site;
  }
  EXPECT_GE(Plan.firedCount(), 10u);
}

TEST(FaultInjection, DifferentSeedsDiffer) {
  // Not guaranteed for every pair of seeds in principle, but these two
  // are fixed, so this is a deterministic regression check that the seed
  // actually feeds the schedule.
  FaultPlan A(1), B(2);
  EXPECT_NE(schedule(A, "prover/sat", 200), schedule(B, "prover/sat", 200));
}

TEST(FaultInjection, InstallAndDisarm) {
  EXPECT_EQ(FaultPlan::current(), nullptr);
  FaultPlan Plan(3);
  FaultPlan::install(&Plan);
  EXPECT_EQ(FaultPlan::current(), &Plan);
  FaultPlan::install(nullptr);
  EXPECT_EQ(FaultPlan::current(), nullptr);
  // With no plan installed, a fault point never fires regardless of the
  // build configuration.
  EXPECT_FALSE(faultPoint("prover/sat"));
}

TEST(FaultInjection, SeedIsReported) {
  FaultPlan Plan(12345);
  EXPECT_EQ(Plan.seed(), 12345u);
  EXPECT_EQ(Plan.firedCount(), 0u);
}

} // namespace
