//===- GovernorTest.cpp ---------------------------------------------------===//
//
// The fail-sound resource governor: budgets trip exactly once, record
// where they died, and degrade cooperatively — no exceptions, no
// signals.
//
//===----------------------------------------------------------------------===//

#include "support/Governor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

using namespace mcsafe::support;

namespace {

TEST(Governor, NoLimitsNeverExhausts) {
  GovernorLimits L;
  EXPECT_FALSE(L.any());
  ResourceGovernor G(L);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_TRUE(G.poll("test/loop"));
    EXPECT_TRUE(G.chargeProverStep("test/step"));
  }
  EXPECT_FALSE(G.exhausted());
  EXPECT_EQ(G.exhaustedKind(), BudgetKind::None);
  EXPECT_EQ(G.stepsUsed(), 1000u);
}

TEST(Governor, ProverStepBudgetTripsAtLimit) {
  GovernorLimits L;
  L.ProverSteps = 10;
  ResourceGovernor G(L);
  for (int I = 0; I < 10; ++I)
    EXPECT_TRUE(G.chargeProverStep("test/step")) << "step " << I;
  EXPECT_FALSE(G.exhausted());
  EXPECT_FALSE(G.chargeProverStep("test/step"));
  EXPECT_TRUE(G.exhausted());
  EXPECT_EQ(G.exhaustedKind(), BudgetKind::ProverSteps);
  EXPECT_STREQ(G.exhaustedSite(), "test/step");
  // Once tripped, everything cooperatively reports exhaustion.
  EXPECT_FALSE(G.poll("test/later"));
  EXPECT_FALSE(G.chargeProverStep("test/later"));
  // The site of the *first* trip is what the reason reports.
  EXPECT_NE(G.reason().find("test/step"), std::string::npos) << G.reason();
  EXPECT_NE(G.reason().find("10"), std::string::npos) << G.reason();
}

TEST(Governor, CancellationTripsImmediately) {
  GovernorLimits L;
  L.ProverSteps = 1000000;
  ResourceGovernor G(L);
  EXPECT_TRUE(G.poll("test/before"));
  G.cancel();
  EXPECT_TRUE(G.exhausted());
  EXPECT_EQ(G.exhaustedKind(), BudgetKind::Cancelled);
  EXPECT_FALSE(G.poll("test/after"));
}

TEST(Governor, FirstTripWins) {
  GovernorLimits L;
  L.ProverSteps = 1;
  ResourceGovernor G(L);
  G.chargeProverStep("a");
  EXPECT_FALSE(G.chargeProverStep("b"));
  G.cancel();
  EXPECT_EQ(G.exhaustedKind(), BudgetKind::ProverSteps);
  EXPECT_STREQ(G.exhaustedSite(), "b");
}

TEST(Governor, MemoryBudgetAndHighWater) {
  GovernorLimits L;
  L.MemoryBytes = 1000;
  ResourceGovernor G(L);
  EXPECT_TRUE(G.noteMemory("test/a", 400));
  EXPECT_TRUE(G.noteMemory("test/b", 400));
  EXPECT_EQ(G.memoryHighWater(), 800u);
  G.releaseMemory(400);
  // High water is sticky; live usage is not.
  EXPECT_EQ(G.memoryHighWater(), 800u);
  EXPECT_TRUE(G.noteMemory("test/c", 500));
  EXPECT_EQ(G.memoryHighWater(), 900u);
  EXPECT_FALSE(G.noteMemory("test/d", 200));
  EXPECT_EQ(G.exhaustedKind(), BudgetKind::Memory);
}

TEST(Governor, MemoryChargeRaii) {
  GovernorLimits L;
  L.MemoryBytes = 1000;
  ResourceGovernor G(L);
  {
    MemoryCharge C(&G, "test/scope", 600);
    EXPECT_EQ(G.memoryHighWater(), 600u);
  }
  {
    // The previous charge was released, so this fits again.
    MemoryCharge C(&G, "test/scope", 600);
    EXPECT_FALSE(G.exhausted());
  }
  // A null governor is a no-op, not a crash.
  MemoryCharge Null(nullptr, "test/null", 1 << 30);
}

TEST(Governor, DeadlineTripsViaChargeProverStep) {
  GovernorLimits L;
  L.DeadlineMs = 1;
  ResourceGovernor G(L);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // chargeProverStep consults the clock on every call.
  EXPECT_FALSE(G.chargeProverStep("test/deadline"));
  EXPECT_EQ(G.exhaustedKind(), BudgetKind::Deadline);
}

TEST(Governor, DeadlineTripsViaPollEventually) {
  GovernorLimits L;
  L.DeadlineMs = 1;
  ResourceGovernor G(L);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  // poll() amortizes clock reads over a fixed stride; well within that
  // stride it must notice the expired deadline.
  bool Tripped = false;
  for (int I = 0; I < 256 && !Tripped; ++I)
    Tripped = !G.poll("test/deadline");
  EXPECT_TRUE(Tripped);
  EXPECT_EQ(G.exhaustedKind(), BudgetKind::Deadline);
}

TEST(Governor, BudgetKindNames) {
  EXPECT_STREQ(budgetKindName(BudgetKind::None), "none");
  EXPECT_STREQ(budgetKindName(BudgetKind::Deadline), "deadline");
  EXPECT_STREQ(budgetKindName(BudgetKind::ProverSteps), "prover-steps");
  EXPECT_STREQ(budgetKindName(BudgetKind::Memory), "memory");
  EXPECT_STREQ(budgetKindName(BudgetKind::Cancelled), "cancelled");
}

} // namespace
