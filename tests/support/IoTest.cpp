//===- IoTest.cpp - EINTR-safe I/O helpers --------------------------------===//
//
// The I/O layer's contract: interrupted syscalls are retried invisibly,
// file-read failures are classified (missing vs unreadable vs empty)
// with stable human-readable messages, and the socket helpers transfer
// exact byte counts — a clean EOF, a mid-object EOF, and an error are
// three distinguishable outcomes, never a silent short read.
//
//===----------------------------------------------------------------------===//

#include "support/Io.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace mcsafe;
using namespace mcsafe::support;

namespace {

struct TempFile {
  std::string Path;
  explicit TempFile(const char *Tag) {
    Path = (std::filesystem::temp_directory_path() /
            (std::string("mcsafe-io-") + Tag + "-" +
             std::to_string(::getpid())))
               .string();
    std::remove(Path.c_str());
  }
  ~TempFile() { std::remove(Path.c_str()); }
};

TEST(RetryEintr, PassesThroughSuccessImmediately) {
  int Calls = 0;
  long R = retryEintr([&] {
    ++Calls;
    return 42L;
  });
  EXPECT_EQ(R, 42);
  EXPECT_EQ(Calls, 1);
}

TEST(RetryEintr, RetriesWhileEintrThenReturns) {
  int Calls = 0;
  long R = retryEintr([&]() -> long {
    if (++Calls < 4) {
      errno = EINTR;
      return -1;
    }
    return 7;
  });
  EXPECT_EQ(R, 7);
  EXPECT_EQ(Calls, 4);
}

TEST(RetryEintr, OtherErrorsAreNotRetried) {
  int Calls = 0;
  long R = retryEintr([&]() -> long {
    ++Calls;
    errno = EBADF;
    return -1;
  });
  EXPECT_EQ(R, -1);
  EXPECT_EQ(Calls, 1);
  EXPECT_EQ(errno, EBADF);
}

TEST(ReadWholeFile, RoundTripsBinaryBytes) {
  TempFile T("roundtrip");
  std::string Bytes = "a\0b\xff\ncr\rlf\n";
  Bytes.push_back('\0');
  {
    std::ofstream Out(T.Path, std::ios::binary);
    Out.write(Bytes.data(), static_cast<std::streamsize>(Bytes.size()));
  }
  std::string Error;
  ReadFileError Kind = ReadFileError::ReadFailed;
  std::optional<std::string> Got = readWholeFile(T.Path, Error, &Kind);
  ASSERT_TRUE(Got.has_value()) << Error;
  EXPECT_EQ(*Got, Bytes);
  EXPECT_EQ(Kind, ReadFileError::None);
}

TEST(ReadWholeFile, MissingFileIsCannotOpenWithPathInMessage) {
  TempFile T("missing");
  std::string Error;
  ReadFileError Kind = ReadFileError::None;
  EXPECT_FALSE(readWholeFile(T.Path, Error, &Kind).has_value());
  EXPECT_EQ(Kind, ReadFileError::CannotOpen);
  EXPECT_NE(Error.find("cannot open '" + T.Path + "'"), std::string::npos)
      << Error;
}

TEST(ReadWholeFile, EmptyFileIsItsOwnFailureClass) {
  TempFile T("empty");
  { std::ofstream Out(T.Path, std::ios::binary); }
  std::string Error;
  ReadFileError Kind = ReadFileError::None;
  EXPECT_FALSE(readWholeFile(T.Path, Error, &Kind).has_value());
  EXPECT_EQ(Kind, ReadFileError::Empty);
  EXPECT_EQ(Error, "'" + T.Path + "' is empty");
}

TEST(WriteAllFd, WritesEverythingReadBackIdentical) {
  TempFile T("writeall");
  std::string Big(1 << 20, 'x');
  for (size_t I = 0; I < Big.size(); I += 7)
    Big[I] = static_cast<char>(I & 0xff);
  int Fd = ::open(T.Path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(Fd, 0);
  EXPECT_TRUE(writeAllFd(Fd, Big));
  closeFd(Fd);
  std::string Error;
  std::optional<std::string> Got = readWholeFile(T.Path, Error);
  ASSERT_TRUE(Got.has_value()) << Error;
  EXPECT_EQ(*Got, Big);
}

TEST(WriteAllFd, BadFdFails) {
  EXPECT_FALSE(writeAllFd(-1, "bytes"));
}

TEST(Sockets, SendAllRecvFullTransferExactCounts) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  std::string Msg(256 * 1024, 'm'); // Larger than any socket buffer.
  for (size_t I = 0; I < Msg.size(); ++I)
    Msg[I] = static_cast<char>(I * 31);
  std::thread Sender([&] {
    EXPECT_TRUE(sendAll(Fds[0], Msg));
    closeFd(Fds[0]);
  });
  std::string Got(Msg.size(), '\0');
  EXPECT_EQ(recvFull(Fds[1], Got.data(), Got.size()),
            static_cast<long>(Got.size()));
  EXPECT_EQ(Got, Msg);
  // The peer closed after sending: a fresh read sees clean EOF.
  char B;
  EXPECT_EQ(recvFull(Fds[1], &B, 1), 0);
  closeFd(Fds[1]);
  Sender.join();
}

TEST(Sockets, EofMidObjectIsAnErrorNotAShortRead) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  EXPECT_TRUE(sendAll(Fds[0], "abc"));
  closeFd(Fds[0]);
  char Buf[8];
  // 3 bytes then EOF while 8 were promised: -1, not 3.
  EXPECT_EQ(recvFull(Fds[1], Buf, sizeof(Buf)), -1);
  closeFd(Fds[1]);
}

TEST(Sockets, SendToClosedPeerFailsWithoutSigpipe) {
  int Fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, Fds), 0);
  closeFd(Fds[1]);
  // MSG_NOSIGNAL turns the broken pipe into EPIPE on the call. Without
  // it this test would kill the whole process with SIGPIPE.
  std::string Big(1 << 20, 'p');
  EXPECT_FALSE(sendAll(Fds[0], Big));
  closeFd(Fds[0]);
}

} // namespace
