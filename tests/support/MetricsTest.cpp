//===- MetricsTest.cpp ----------------------------------------------------===//

#include "support/Metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <thread>
#include <vector>

using namespace mcsafe::support;

namespace {

TEST(Metrics, CounterBasics) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("a/b");
  EXPECT_EQ(C.value(), 0u);
  C.inc();
  C.inc(41);
  EXPECT_EQ(C.value(), 42u);
  // Same name resolves to the same metric.
  EXPECT_EQ(&Reg.counter("a/b"), &C);
  EXPECT_EQ(Reg.value("a/b"), 42);
  EXPECT_FALSE(Reg.value("a/missing").has_value());
}

TEST(Metrics, GaugeBasics) {
  MetricsRegistry Reg;
  Gauge &G = Reg.gauge("jobs");
  G.set(8);
  EXPECT_EQ(G.value(), 8);
  G.add(-3);
  EXPECT_EQ(G.value(), 5);
  EXPECT_EQ(Reg.value("jobs"), 5);
}

TEST(Metrics, HistogramBasics) {
  MetricsRegistry Reg;
  Histogram &H = Reg.histogram("lat");
  for (uint64_t V : {0u, 1u, 2u, 3u, 100u})
    H.observe(V);
  Histogram::Snapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 106u);
  EXPECT_EQ(S.Min, 0u);
  EXPECT_EQ(S.Max, 100u);
  EXPECT_EQ(S.Buckets[0], 1u); // 0
  EXPECT_EQ(S.Buckets[1], 1u); // 1
  EXPECT_EQ(S.Buckets[2], 2u); // 2, 3
  EXPECT_EQ(S.Buckets[7], 1u); // 100 in [64, 128)
}

TEST(Metrics, KindMismatchIsSafe) {
  MetricsRegistry Reg;
  Counter &C = Reg.counter("x");
  C.inc(7);
  // Asking for the same name as a gauge must not crash or corrupt the
  // counter; the shadow gauge is simply not emitted.
  Gauge &G = Reg.gauge("x");
  G.set(99);
  EXPECT_EQ(Reg.value("x"), 7);
  std::ostringstream OS;
  Reg.writeJson(OS);
  EXPECT_NE(OS.str().find("\"x\": 7"), std::string::npos);
  EXPECT_EQ(OS.str().find("99"), std::string::npos);
}

TEST(Metrics, JsonNesting) {
  MetricsRegistry Reg;
  Reg.counter("program/Sum/phase/global_us").inc(12);
  Reg.counter("program/Sum/phase/lint_us").inc(3);
  Reg.counter("program/Copy/phase/lint_us").inc(5);
  Reg.gauge("parallel/jobs").set(4);
  std::ostringstream OS;
  Reg.writeJson(OS);
  std::string J = OS.str();
  // Nested objects along '/' boundaries, keys sorted.
  EXPECT_NE(J.find("\"program\": {"), std::string::npos);
  EXPECT_NE(J.find("\"Sum\": {"), std::string::npos);
  EXPECT_NE(J.find("\"Copy\": {"), std::string::npos);
  EXPECT_NE(J.find("\"global_us\": 12"), std::string::npos);
  EXPECT_NE(J.find("\"jobs\": 4"), std::string::npos);
  EXPECT_LT(J.find("\"Copy\""), J.find("\"Sum\"")); // Sorted.
  // Balanced braces.
  EXPECT_EQ(std::count(J.begin(), J.end(), '{'),
            std::count(J.begin(), J.end(), '}'));
}

TEST(Metrics, JsonDeterministic) {
  auto Render = [](bool ReverseOrder) {
    MetricsRegistry Reg;
    std::vector<std::string> Names = {"b/x", "a/y", "a/x", "c"};
    if (ReverseOrder)
      std::reverse(Names.begin(), Names.end());
    for (const std::string &N : Names)
      Reg.counter(N).inc(1);
    std::ostringstream OS;
    Reg.writeJson(OS);
    return OS.str();
  };
  EXPECT_EQ(Render(false), Render(true));
}

TEST(Metrics, JsonHistogram) {
  MetricsRegistry Reg;
  Reg.histogram("phase/lint_us").observe(10);
  Reg.histogram("phase/lint_us").observe(20);
  std::ostringstream OS;
  Reg.writeJson(OS);
  EXPECT_NE(OS.str().find("{\"count\": 2, \"sum\": 30, \"min\": 10, "
                          "\"max\": 20}"),
            std::string::npos);
}

TEST(Metrics, ConcurrentUpdates) {
  MetricsRegistry Reg;
  constexpr int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Ts;
  for (int T = 0; T < Threads; ++T)
    Ts.emplace_back([&Reg] {
      // Mix registration (locked) and updates (lock-free).
      for (int I = 0; I < PerThread; ++I) {
        Reg.counter("shared").inc();
        Reg.histogram("dist").observe(static_cast<uint64_t>(I));
      }
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_EQ(Reg.value("shared"), Threads * PerThread);
  EXPECT_EQ(Reg.histogram("dist").snapshot().Count,
            static_cast<uint64_t>(Threads) * PerThread);
}

} // namespace
