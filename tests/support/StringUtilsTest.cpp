//===- StringUtilsTest.cpp ------------------------------------------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtils, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtils, SplitWhitespace) {
  auto Parts = splitWhitespace("  ld  [%o2+%g2],%g2 \t x ");
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "ld");
  EXPECT_EQ(Parts[1], "[%o2+%g2],%g2");
  EXPECT_EQ(Parts[2], "x");
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("%hi(42)", "%hi("));
  EXPECT_FALSE(startsWith("%h", "%hi("));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringUtils, ParseIntDecimal) {
  EXPECT_EQ(parseInt("0"), 0);
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-42"), -42);
  EXPECT_EQ(parseInt("+7"), 7);
  EXPECT_EQ(parseInt(" 13 "), 13);
}

TEST(StringUtils, ParseIntHex) {
  EXPECT_EQ(parseInt("0x10"), 16);
  EXPECT_EQ(parseInt("0xFF"), 255);
  EXPECT_EQ(parseInt("0xff"), 255);
  EXPECT_EQ(parseInt("-0x10"), -16);
}

TEST(StringUtils, ParseIntRejectsGarbage) {
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("-").has_value());
  EXPECT_FALSE(parseInt("12a").has_value());
  EXPECT_FALSE(parseInt("0x").has_value());
  EXPECT_FALSE(parseInt("%o0").has_value());
  EXPECT_FALSE(parseInt("1 2").has_value());
}

TEST(StringUtils, ParseIntRejectsOverflow) {
  EXPECT_FALSE(parseInt("99999999999999999999999").has_value());
  EXPECT_EQ(parseInt("9223372036854775807"), INT64_MAX);
  EXPECT_FALSE(parseInt("9223372036854775808").has_value());
}

} // namespace
