//===- StringUtilsTest.cpp ------------------------------------------------===//

#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace mcsafe;

namespace {

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("\t a b \n"), "a b");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtils, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[1], "b");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(Parts[3], "c");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtils, SplitWhitespace) {
  auto Parts = splitWhitespace("  ld  [%o2+%g2],%g2 \t x ");
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "ld");
  EXPECT_EQ(Parts[1], "[%o2+%g2],%g2");
  EXPECT_EQ(Parts[2], "x");
  EXPECT_TRUE(splitWhitespace("   ").empty());
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("%hi(42)", "%hi("));
  EXPECT_FALSE(startsWith("%h", "%hi("));
  EXPECT_TRUE(startsWith("abc", ""));
}

TEST(StringUtils, ParseIntDecimal) {
  EXPECT_EQ(parseInt("0"), 0);
  EXPECT_EQ(parseInt("42"), 42);
  EXPECT_EQ(parseInt("-42"), -42);
  EXPECT_EQ(parseInt("+7"), 7);
  EXPECT_EQ(parseInt(" 13 "), 13);
}

TEST(StringUtils, ParseIntHex) {
  EXPECT_EQ(parseInt("0x10"), 16);
  EXPECT_EQ(parseInt("0xFF"), 255);
  EXPECT_EQ(parseInt("0xff"), 255);
  EXPECT_EQ(parseInt("-0x10"), -16);
}

TEST(StringUtils, ParseIntRejectsGarbage) {
  EXPECT_FALSE(parseInt("").has_value());
  EXPECT_FALSE(parseInt("-").has_value());
  EXPECT_FALSE(parseInt("12a").has_value());
  EXPECT_FALSE(parseInt("0x").has_value());
  EXPECT_FALSE(parseInt("%o0").has_value());
  EXPECT_FALSE(parseInt("1 2").has_value());
}

TEST(StringUtils, ParseIntRejectsOverflow) {
  EXPECT_FALSE(parseInt("99999999999999999999999").has_value());
  EXPECT_EQ(parseInt("9223372036854775807"), INT64_MAX);
  EXPECT_FALSE(parseInt("9223372036854775808").has_value());
}

TEST(StringUtils, ParseIntDecimalBoundaries) {
  // INT64_MIN has no positive counterpart; a magnitude-based parse must
  // accept it without overflowing on negation.
  EXPECT_EQ(parseInt("-9223372036854775808"), INT64_MIN);
  EXPECT_FALSE(parseInt("-9223372036854775809").has_value());
  EXPECT_EQ(parseInt("-9223372036854775807"), INT64_MIN + 1);
  EXPECT_EQ(parseInt("+9223372036854775807"), INT64_MAX);
  EXPECT_FALSE(parseInt("+9223372036854775808").has_value());
  // Leading zeros must not change the overflow decision.
  EXPECT_EQ(parseInt("-0009223372036854775808"), INT64_MIN);
  EXPECT_EQ(parseInt("0009223372036854775807"), INT64_MAX);
  // One digit past the limit in length overflows regardless of value.
  EXPECT_FALSE(parseInt("92233720368547758070").has_value());
  EXPECT_FALSE(parseInt("-92233720368547758080").has_value());
}

TEST(StringUtils, ParseIntHexBoundaries) {
  EXPECT_EQ(parseInt("0x7fffffffffffffff"), INT64_MAX);
  EXPECT_EQ(parseInt("+0x7FFFFFFFFFFFFFFF"), INT64_MAX);
  EXPECT_FALSE(parseInt("0x8000000000000000").has_value());
  EXPECT_EQ(parseInt("-0x8000000000000000"), INT64_MIN);
  EXPECT_FALSE(parseInt("-0x8000000000000001").has_value());
  EXPECT_FALSE(parseInt("0xFFFFFFFFFFFFFFFF").has_value());
  EXPECT_FALSE(parseInt("-0xFFFFFFFFFFFFFFFF").has_value());
  EXPECT_FALSE(parseInt("0x10000000000000000").has_value());
}

TEST(StringUtils, ParseIntHexPrefixEdgeCases) {
  // A bare prefix has no digits, whatever the sign.
  EXPECT_FALSE(parseInt("0x").has_value());
  EXPECT_FALSE(parseInt("0X").has_value());
  EXPECT_FALSE(parseInt("-0x").has_value());
  EXPECT_FALSE(parseInt("+0x").has_value());
  // Two-character hex values (prefix + one digit) are valid — the
  // prefix check must not require a minimum length of three.
  EXPECT_EQ(parseInt("0x0"), 0);
  EXPECT_EQ(parseInt("0x7"), 7);
  EXPECT_EQ(parseInt("0XA"), 10);
  EXPECT_EQ(parseInt("-0x1"), -1);
  EXPECT_EQ(parseInt("+0xf"), 15);
  // Hex digits are only digits after a proper prefix.
  EXPECT_FALSE(parseInt("ff").has_value());
  EXPECT_FALSE(parseInt("x10").has_value());
  EXPECT_FALSE(parseInt("0y10").has_value());
}

TEST(StringUtils, ParseIntSignEdgeCases) {
  EXPECT_EQ(parseInt("+0"), 0);
  EXPECT_EQ(parseInt("-0"), 0);
  EXPECT_EQ(parseInt("+0x0"), 0);
  EXPECT_EQ(parseInt("-0x0"), 0);
  EXPECT_FALSE(parseInt("+").has_value());
  EXPECT_FALSE(parseInt("++1").has_value());
  EXPECT_FALSE(parseInt("--1").has_value());
  EXPECT_FALSE(parseInt("+-1").has_value());
  EXPECT_FALSE(parseInt("- 1").has_value());
}

} // namespace
