//===- ThreadPoolTest.cpp -------------------------------------------------===//

#include "support/ThreadPool.h"

#include "gtest/gtest.h"

#include <atomic>
#include <set>
#include <thread>
#include <vector>

using namespace mcsafe::support;

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.workerCount(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Count] { ++Count; });
  // The destructor drains the queue; check after scope exit.
  {
    TaskGroup Group(&Pool);
    for (int I = 0; I < 100; ++I)
      Group.spawn([&Count] { ++Count; });
  }
  while (Count.load() < 200)
    std::this_thread::yield();
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, TaskGroupWaitIsABarrier) {
  ThreadPool Pool(3);
  std::atomic<int> Count{0};
  TaskGroup Group(&Pool);
  for (int I = 0; I < 500; ++I)
    Group.spawn([&Count] { ++Count; });
  Group.wait();
  EXPECT_EQ(Count.load(), 500);
  // A group is reusable after wait().
  Group.spawn([&Count] { ++Count; });
  Group.wait();
  EXPECT_EQ(Count.load(), 501);
}

TEST(ThreadPoolTest, NullPoolRunsInline) {
  TaskGroup Group(nullptr);
  int Count = 0;
  Group.spawn([&Count] { ++Count; });
  EXPECT_EQ(Count, 1); // Ran synchronously, before wait().
  Group.wait();
  EXPECT_EQ(Count, 1);
}

TEST(ThreadPoolTest, NestedGroupsDoNotDeadlock) {
  // More outer tasks than workers, each waiting on an inner group: the
  // helping wait() must keep every worker productive.
  ThreadPool Pool(2);
  std::atomic<int> Inner{0};
  TaskGroup Outer(&Pool);
  for (int I = 0; I < 8; ++I)
    Outer.spawn([&Pool, &Inner] {
      TaskGroup Group(&Pool);
      for (int J = 0; J < 16; ++J)
        Group.spawn([&Inner] { ++Inner; });
      Group.wait();
    });
  Outer.wait();
  EXPECT_EQ(Inner.load(), 8 * 16);
}

TEST(ThreadPoolTest, WaitHelpsFromNonWorkerThread) {
  // With a single worker and many tasks, the main thread's wait() must
  // pitch in rather than block on a saturated queue.
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  TaskGroup Group(&Pool);
  for (int I = 0; I < 256; ++I)
    Group.spawn([&Count] { ++Count; });
  Group.wait();
  EXPECT_EQ(Count.load(), 256);
}

TEST(ThreadPoolTest, ParallelSumStress) {
  ThreadPool Pool(8);
  constexpr int N = 2000;
  std::vector<int> Results(N, 0);
  TaskGroup Group(&Pool);
  for (int I = 0; I < N; ++I)
    Group.spawn([&Results, I] { Results[I] = I; });
  Group.wait();
  long long Sum = 0;
  for (int R : Results)
    Sum += R;
  EXPECT_EQ(Sum, static_cast<long long>(N) * (N - 1) / 2);
}

TEST(ThreadPoolTest, TasksRunOnWorkerThreads) {
  ThreadPool Pool(2);
  std::set<std::thread::id> Ids;
  std::mutex M;
  TaskGroup Group(&Pool);
  for (int I = 0; I < 64; ++I)
    Group.spawn([&Ids, &M] {
      std::lock_guard<std::mutex> Lock(M);
      Ids.insert(std::this_thread::get_id());
    });
  Group.wait();
  // Tasks ran somewhere — workers and possibly the helping main thread.
  EXPECT_GE(Ids.size(), 1u);
  EXPECT_LE(Ids.size(), 3u);
}

TEST(ThreadPoolTest, HardwareConcurrencyNonZero) {
  EXPECT_GE(ThreadPool::hardwareConcurrency(), 1u);
}

TEST(ThreadPoolTest, StatsCountSubmittedAndExecuted) {
  ThreadPool Pool(4);
  constexpr int N = 300;
  std::atomic<int> Count{0};
  for (int I = 0; I < N; ++I)
    Pool.submit([&Count] { ++Count; });
  // Executed trails the task body by one counter update; spin until the
  // pool has fully accounted for the batch.
  while (Pool.stats().Executed < N)
    std::this_thread::yield();
  ThreadPool::Stats S = Pool.stats();
  EXPECT_EQ(S.Submitted, static_cast<uint64_t>(N));
  EXPECT_EQ(S.Executed, static_cast<uint64_t>(N));
  EXPECT_EQ(Count.load(), N);
}

TEST(ThreadPoolTest, StatsStayConsistentUnderStealing) {
  // Steal counts depend on scheduling, so assert invariants rather than
  // exact values: a steal is a kind of execution, and the pool cannot
  // execute more than was submitted (group tasks drained by the helping
  // wait() run outside the pool's counters).
  ThreadPool Pool(4);
  std::atomic<int> Count{0};
  {
    TaskGroup Group(&Pool);
    for (int I = 0; I < 2000; ++I)
      Group.spawn([&Count] { ++Count; });
  }
  EXPECT_EQ(Count.load(), 2000);
  // Proxy tasks drained by the helping wait() still run (as no-ops) on
  // the workers; wait for the full batch so the counters are settled.
  while (Pool.stats().Executed < 2000)
    std::this_thread::yield();
  ThreadPool::Stats S = Pool.stats();
  EXPECT_LE(S.Steals, S.Executed);
  EXPECT_EQ(S.Executed, 2000u);
  EXPECT_EQ(S.Submitted, 2000u);
}
