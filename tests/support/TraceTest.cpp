//===- TraceTest.cpp ------------------------------------------------------===//

#include "support/Trace.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

using namespace mcsafe::support;

namespace {

/// Restores the global tracer even when an assertion aborts the test.
struct GlobalTracerGuard {
  explicit GlobalTracerGuard(Tracer *T) { Tracer::setGlobal(T); }
  ~GlobalTracerGuard() { Tracer::setGlobal(nullptr); }
};

TEST(Trace, DisabledSpansAreNoOps) {
  ASSERT_EQ(Tracer::global(), nullptr);
  // Must not crash, allocate a tracer, or record anywhere.
  for (int I = 0; I < 1000; ++I)
    TraceSpan Span("checker/typestate");
  EXPECT_EQ(Tracer::global(), nullptr);
}

TEST(Trace, RecordsSpans) {
  Tracer T;
  GlobalTracerGuard G(&T);
  {
    TraceSpan Outer("checker/check", "Sum");
    TraceSpan Inner("prover/sat");
  }
  EXPECT_EQ(T.eventCount(), 2u);
}

TEST(Trace, ChromeJsonShape) {
  Tracer T;
  {
    GlobalTracerGuard G(&T);
    TraceSpan Span("parallel/job", "a \"quoted\" name");
  }
  std::ostringstream OS;
  T.writeJson(OS);
  std::string J = OS.str();
  EXPECT_NE(J.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(J.find("\"name\": \"parallel/job\""), std::string::npos);
  EXPECT_NE(J.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(J.find("\"ts\": "), std::string::npos);
  EXPECT_NE(J.find("\"dur\": "), std::string::npos);
  EXPECT_NE(J.find("\"pid\": 1"), std::string::npos);
  // The arg string is escaped.
  EXPECT_NE(J.find("a \\\"quoted\\\" name"), std::string::npos);
}

TEST(Trace, EmptyTracerStillValidJson) {
  Tracer T;
  std::ostringstream OS;
  T.writeJson(OS);
  EXPECT_EQ(OS.str(), "{\"traceEvents\": [\n]}\n");
}

TEST(Trace, ThreadsGetDistinctSmallIds) {
  Tracer T;
  GlobalTracerGuard G(&T);
  constexpr int Threads = 4;
  std::vector<std::thread> Ts;
  for (int I = 0; I < Threads; ++I)
    Ts.emplace_back([] {
      for (int K = 0; K < 100; ++K)
        TraceSpan Span("pool/task");
    });
  for (std::thread &Th : Ts)
    Th.join();
  EXPECT_EQ(T.eventCount(), 400u);
  std::ostringstream OS;
  T.writeJson(OS);
  // Tids are small dense ints; with 4 recording threads the highest
  // possible id is 3.
  EXPECT_EQ(OS.str().find("\"tid\": 4"), std::string::npos);
}

} // namespace
