//===- AbsLocTest.cpp - Abstract locations and field lookup ---------------===//

#include "typestate/AbsLoc.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::typestate;

namespace {

/// Builds a thread-struct location: {tid@0, lwpid@4, next@8}.
struct ThreadFixture {
  LocationTable Locs;
  AbsLocId Thread, Tid, Lwpid, Next;

  ThreadFixture() {
    TypeRef ThreadTy = TypeFactory::strct("thread", {}, 12, 4);
    AbstractLocation T;
    T.Name = "t";
    T.Type = ThreadTy;
    T.Size = 12;
    T.Align = 4;
    Thread = Locs.create(T);
    auto Field = [&](const char *Name, uint32_t Size, TypeRef Ty) {
      AbstractLocation F;
      F.Name = Name;
      F.Type = std::move(Ty);
      F.Size = Size;
      F.Align = 4;
      F.Parent = Thread;
      return Locs.create(F);
    };
    Tid = Field("t.tid", 4, TypeFactory::int32());
    Lwpid = Field("t.lwpid", 4, TypeFactory::int32());
    Next = Field("t.next", 4, TypeFactory::ptr(ThreadTy));
    Locs.loc(Thread).Fields = {{0, Tid}, {4, Lwpid}, {8, Next}};
  }
};

TEST(AbsLoc, LookupByName) {
  ThreadFixture F;
  EXPECT_EQ(F.Locs.lookup("t"), F.Thread);
  EXPECT_EQ(F.Locs.lookup("t.next"), F.Next);
  EXPECT_EQ(F.Locs.lookup("ghost"), InvalidLoc);
}

TEST(AbsLoc, ResolveStructFields) {
  ThreadFixture F;
  EXPECT_EQ(F.Locs.resolveField(F.Thread, 0, 4), F.Tid);
  EXPECT_EQ(F.Locs.resolveField(F.Thread, 4, 4), F.Lwpid);
  EXPECT_EQ(F.Locs.resolveField(F.Thread, 8, 4), F.Next);
  // Misaligned or out-of-bounds accesses fail.
  EXPECT_EQ(F.Locs.resolveField(F.Thread, 2, 4), InvalidLoc);
  EXPECT_EQ(F.Locs.resolveField(F.Thread, 12, 4), InvalidLoc);
  // Wrong width fails (no ground subtyping in the lookup).
  EXPECT_EQ(F.Locs.resolveField(F.Thread, 0, 2), InvalidLoc);
}

TEST(AbsLoc, ScalarLeafResolvesItself) {
  LocationTable Locs;
  AbstractLocation L;
  L.Name = "x";
  L.Type = TypeFactory::int32();
  L.Size = 4;
  AbsLocId Id = Locs.create(L);
  EXPECT_EQ(Locs.resolveField(Id, 0, 4), Id);
  EXPECT_EQ(Locs.resolveField(Id, 4, 4), InvalidLoc);
}

TEST(AbsLoc, FreeStandingSummaryElement) {
  // The paper's "e": any element-aligned, element-sized offset hits it.
  LocationTable Locs;
  AbstractLocation E;
  E.Name = "e";
  E.Type = TypeFactory::int32();
  E.Size = 4;
  E.Summary = true;
  AbsLocId Id = Locs.create(E);
  EXPECT_EQ(Locs.resolveField(Id, 0, 4), Id);
  EXPECT_EQ(Locs.resolveField(Id, 40, 4), Id);
  EXPECT_EQ(Locs.resolveField(Id, 2, 4), InvalidLoc);  // Misaligned.
  EXPECT_EQ(Locs.resolveField(Id, 0, 2), InvalidLoc);  // Wrong width.
  EXPECT_EQ(Locs.resolveField(Id, -4, 4), InvalidLoc); // Negative.
}

TEST(AbsLoc, EmbeddedArrayField) {
  // struct frame { int32 buf[16] @0; int32 canary @64 }.
  LocationTable Locs;
  AbstractLocation Frame;
  Frame.Name = "f";
  Frame.Type = TypeFactory::strct("frame", {}, 68, 8);
  Frame.Size = 68;
  AbsLocId FrameId = Locs.create(Frame);
  AbstractLocation Buf;
  Buf.Name = "f.buf";
  Buf.Type = TypeFactory::int32();
  Buf.Size = 4;
  Buf.Extent = 64;
  Buf.Summary = true;
  Buf.Parent = FrameId;
  AbsLocId BufId = Locs.create(Buf);
  AbstractLocation Canary;
  Canary.Name = "f.canary";
  Canary.Type = TypeFactory::int32();
  Canary.Size = 4;
  Canary.Parent = FrameId;
  AbsLocId CanaryId = Locs.create(Canary);
  Locs.loc(FrameId).Fields = {{0, BufId}, {64, CanaryId}};

  EXPECT_EQ(Locs.resolveField(FrameId, 0, 4), BufId);
  EXPECT_EQ(Locs.resolveField(FrameId, 60, 4), BufId);
  EXPECT_EQ(Locs.resolveField(FrameId, 64, 4), CanaryId);
  EXPECT_EQ(Locs.resolveField(FrameId, 62, 4), InvalidLoc); // Straddles.
  EXPECT_EQ(Locs.resolveField(FrameId, 68, 4), InvalidLoc);
  EXPECT_EQ(Buf.extent(), 64u);
  EXPECT_EQ(Canary.extent(), 4u);
}

TEST(AbsLoc, CollectLeaves) {
  ThreadFixture F;
  std::vector<AbsLocId> Leaves;
  F.Locs.collectLeaves(F.Thread, Leaves);
  ASSERT_EQ(Leaves.size(), 3u);
  EXPECT_EQ(Leaves[0], F.Tid);
  EXPECT_EQ(Leaves[2], F.Next);
  Leaves.clear();
  F.Locs.collectLeaves(F.Tid, Leaves);
  ASSERT_EQ(Leaves.size(), 1u);
  EXPECT_EQ(Leaves[0], F.Tid);
}

} // namespace
