//===- AbstractStoreTest.cpp ----------------------------------------------===//

#include "typestate/AbstractStore.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::typestate;
using namespace mcsafe::sparc;

namespace {

Typestate scalar(State S) {
  Typestate Ts;
  Ts.Type = TypeFactory::int32();
  Ts.S = std::move(S);
  Ts.A = Access::o();
  return Ts;
}

TEST(AbstractStore, TopBehaviour) {
  AbstractStore T = AbstractStore::top();
  EXPECT_TRUE(T.isTop());
  AbstractStore E = AbstractStore::empty();
  EXPECT_FALSE(E.isTop());
  // Top is the identity of meet.
  AbstractStore S = AbstractStore::empty();
  S.setReg(0, O0, scalar(State::initConst(5)));
  EXPECT_EQ(AbstractStore::meet(T, S), S);
  EXPECT_EQ(AbstractStore::meet(S, T), S);
}

TEST(AbstractStore, G0ReadsAsZeroAndIgnoresWrites) {
  AbstractStore S = AbstractStore::empty();
  EXPECT_EQ(S.reg(0, G0).S.constant(), 0);
  S.setReg(0, G0, scalar(State::initConst(42)));
  EXPECT_EQ(S.reg(0, G0).S.constant(), 0);
}

TEST(AbstractStore, UnsetEntriesAreDefault) {
  AbstractStore S = AbstractStore::empty();
  EXPECT_EQ(S.reg(0, O3), AbstractStore::defaultTypestate());
  EXPECT_EQ(S.loc(17), AbstractStore::defaultTypestate());
  EXPECT_TRUE(S.reg(0, O3).S.isBottom());
}

TEST(AbstractStore, SettingDefaultErases) {
  AbstractStore A = AbstractStore::empty();
  AbstractStore B = AbstractStore::empty();
  A.setReg(0, O1, scalar(State::init()));
  A.setReg(0, O1, AbstractStore::defaultTypestate());
  EXPECT_EQ(A, B); // Normalized maps compare equal.
}

TEST(AbstractStore, GlobalsSharedAcrossDepths) {
  AbstractStore S = AbstractStore::empty();
  S.setReg(0, Reg(3), scalar(State::initConst(7)));
  EXPECT_EQ(S.reg(5, Reg(3)).S.constant(), 7);
  // Window registers are per-depth.
  S.setReg(0, O0, scalar(State::initConst(1)));
  EXPECT_TRUE(S.reg(1, O0).S.isBottom());
}

TEST(AbstractStore, MeetIsPointwise) {
  AbstractStore A = AbstractStore::empty();
  AbstractStore B = AbstractStore::empty();
  A.setReg(0, O0, scalar(State::initConst(1)));
  B.setReg(0, O0, scalar(State::initConst(1)));
  A.setReg(0, O1, scalar(State::init()));
  // O1 set only in A: meets with the bottom default.
  AbstractStore M = AbstractStore::meet(A, B);
  EXPECT_EQ(M.reg(0, O0).S.constant(), 1);
  EXPECT_TRUE(M.reg(0, O1).S.isBottom());
}

TEST(AbstractStore, IccOriginSurvivesEqualMeet) {
  AbstractStore A = AbstractStore::empty();
  AbstractStore B = AbstractStore::empty();
  AbstractStore::IccOrigin Origin{0, O0, 0};
  A.setIccOrigin(Origin);
  B.setIccOrigin(Origin);
  EXPECT_TRUE(AbstractStore::meet(A, B).iccOrigin().has_value());
  B.setIccOrigin(AbstractStore::IccOrigin{0, O1, 0});
  EXPECT_FALSE(AbstractStore::meet(A, B).iccOrigin().has_value());
}

TEST(AbstractStore, WideningDropsGrowingBounds) {
  AbstractStore Old = AbstractStore::empty();
  AbstractStore New = AbstractStore::empty();
  Old.setReg(0, O0, scalar(State::initRange(0, 4)));
  New.setReg(0, O0, scalar(State::initRange(0, 8))); // Upper grew.
  AbstractStore W = AbstractStore::widen(Old, New);
  EXPECT_EQ(W.reg(0, O0).S.lower(), 0);
  EXPECT_FALSE(W.reg(0, O0).S.upper().has_value());

  // A stable interval is untouched.
  New.setReg(0, O0, scalar(State::initRange(0, 4)));
  W = AbstractStore::widen(Old, New);
  EXPECT_EQ(W.reg(0, O0).S.upper(), 4);
}

TEST(AbstractStore, LocationsIndependentOfRegisters) {
  AbstractStore S = AbstractStore::empty();
  S.setLoc(3, scalar(State::init()));
  EXPECT_TRUE(S.loc(3).S.isInit());
  EXPECT_TRUE(S.reg(0, Reg(3)).S.isBottom());
}

TEST(AbstractStore, ForEachRegVisitsEntries) {
  AbstractStore S = AbstractStore::empty();
  S.setReg(0, O0, scalar(State::init()));
  S.setReg(2, L0, scalar(State::init()));
  S.setLoc(9, scalar(State::init()));
  unsigned Regs = 0, Locs = 0;
  S.forEachReg([&](int32_t Depth, Reg R, const Typestate &) {
    ++Regs;
    EXPECT_TRUE((Depth == 0 && R == O0) || (Depth == 2 && R == L0));
  });
  S.forEachLoc([&](AbsLocId Id, const Typestate &) {
    ++Locs;
    EXPECT_EQ(Id, 9u);
  });
  EXPECT_EQ(Regs, 2u);
  EXPECT_EQ(Locs, 1u);
}

TEST(AbstractStore, StrRendersDepthsAndNames) {
  AbstractStore S = AbstractStore::empty();
  S.setReg(1, L0, scalar(State::initConst(3)));
  std::string Out = S.str();
  EXPECT_NE(Out.find("w1.%l0"), std::string::npos);
  EXPECT_NE(Out.find("init(3)"), std::string::npos);
}

} // namespace
