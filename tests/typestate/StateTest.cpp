//===- StateTest.cpp - The Figure 5 state lattice -------------------------===//

#include "typestate/Typestate.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::typestate;

namespace {

TEST(State, TopIsMeetIdentity) {
  State Init = State::init();
  EXPECT_EQ(State::meet(State::top(), Init), Init);
  EXPECT_EQ(State::meet(Init, State::top()), Init);
}

TEST(State, BottomAbsorbs) {
  EXPECT_TRUE(State::meet(State::bottom(), State::init()).isBottom());
  EXPECT_TRUE(State::meet(State::uninit(), State::bottom()).isBottom());
}

TEST(State, InitMeetUninitIsUninit) {
  // A value initialized on only one path cannot be used.
  EXPECT_TRUE(State::meet(State::init(), State::uninit()).isUninit());
  EXPECT_TRUE(
      State::meet(State::pointsToLoc(3), State::uninit()).isUninit());
}

TEST(State, ConstantsMeet) {
  EXPECT_EQ(State::meet(State::initConst(4), State::initConst(4)),
            State::initConst(4));
  // Different constants hull to a range.
  State M = State::meet(State::initConst(2), State::initConst(5));
  EXPECT_TRUE(M.isInit());
  EXPECT_FALSE(M.constant().has_value());
  EXPECT_EQ(M.lower(), 2);
  EXPECT_EQ(M.upper(), 5);
}

TEST(State, IntervalHull) {
  State A = State::initRange(0, 10);
  State B = State::initRange(5, std::nullopt);
  State M = State::meet(A, B);
  EXPECT_EQ(M.lower(), 0);
  EXPECT_FALSE(M.upper().has_value());
}

TEST(State, PointsToMeetIsUnion) {
  // P1 below P2 iff P2 subset of P1: meet unions the sets.
  State A = State::pointsTo({PtrTarget{1, 0}}, false);
  State B = State::pointsTo({PtrTarget{2, 4}}, true);
  State M = State::meet(A, B);
  ASSERT_TRUE(M.isPointsTo());
  EXPECT_EQ(M.targets().size(), 2u);
  EXPECT_TRUE(M.mayBeNull());
}

TEST(State, NullPointerForms) {
  State Null = State::nullPtr();
  EXPECT_TRUE(Null.isDefinitelyNull());
  EXPECT_TRUE(Null.mayBeNull());
  EXPECT_TRUE(Null.isInitialized());
  State P = State::pointsToLoc(7);
  EXPECT_FALSE(P.mayBeNull());
  EXPECT_FALSE(P.isDefinitelyNull());
  State M = State::meet(Null, P);
  EXPECT_TRUE(M.mayBeNull());
  EXPECT_FALSE(M.isDefinitelyNull());
  EXPECT_EQ(M.targets().size(), 1u);
}

TEST(State, OffsetsDistinguishTargets) {
  State A = State::pointsToLoc(1, 0);
  State B = State::pointsToLoc(1, 8);
  State M = State::meet(A, B);
  EXPECT_EQ(M.targets().size(), 2u);
}

TEST(State, InitializedPredicate) {
  EXPECT_TRUE(State::init().isInitialized());
  EXPECT_TRUE(State::pointsToLoc(0).isInitialized());
  EXPECT_FALSE(State::uninit().isInitialized());
  EXPECT_FALSE(State::bottom().isInitialized());
  EXPECT_FALSE(State::top().isInitialized());
}

TEST(State, Printing) {
  EXPECT_EQ(State::uninit().str(), "uninit");
  EXPECT_EQ(State::initConst(3).str(), "init(3)");
  EXPECT_EQ(State::initRange(0, std::nullopt).str(), "init[0,+inf]");
  EXPECT_EQ(State::init().str(), "init");
  EXPECT_EQ(State::nullPtr().str(), "{null}");
}

TEST(Access, MeetIsIntersection) {
  Access A = Access::fo();
  Access B = Access::o();
  Access M = Access::meet(A, B);
  EXPECT_FALSE(M.F);
  EXPECT_FALSE(M.X);
  EXPECT_TRUE(M.O);
  EXPECT_EQ(Access::meet(Access::full(), Access::none()).str(), "-");
}

TEST(Typestate, MeetCombinesComponents) {
  Typestate A;
  A.Type = TypeFactory::int32();
  A.S = State::initConst(1);
  A.A = Access::full();
  Typestate B;
  B.Type = TypeFactory::int32();
  B.S = State::initConst(2);
  B.A = Access::o();
  Typestate M = Typestate::meet(A, B);
  EXPECT_TRUE(typeEquals(M.Type, TypeFactory::int32()));
  EXPECT_TRUE(M.S.isInit());
  EXPECT_EQ(M.S.lower(), 1);
  EXPECT_EQ(M.S.upper(), 2);
  EXPECT_FALSE(M.A.F);
  EXPECT_TRUE(M.A.O);
}

TEST(Typestate, TopIsIdentity) {
  Typestate A;
  A.Type = TypeFactory::ptr(TypeFactory::int32());
  A.S = State::pointsToLoc(5);
  A.A = Access::fo();
  EXPECT_EQ(Typestate::meet(Typestate::top(), A), A);
  EXPECT_EQ(Typestate::meet(A, Typestate::top()), A);
}

TEST(Typestate, MismatchedTypesMeetToBottomType) {
  Typestate A;
  A.Type = TypeFactory::int32();
  A.S = State::init();
  Typestate B;
  B.Type = TypeFactory::ptr(TypeFactory::int32());
  B.S = State::pointsToLoc(1);
  Typestate M = Typestate::meet(A, B);
  EXPECT_TRUE(M.Type->isBottom());
  // Scalar-init against pointer state degrades to uninit.
  EXPECT_TRUE(M.S.isUninit());
}

} // namespace
