//===- TypeTest.cpp - The Figure 4 type system ----------------------------===//

#include "typestate/Type.h"

#include <gtest/gtest.h>

using namespace mcsafe;
using namespace mcsafe::typestate;

namespace {

TEST(Type, GroundSizesAndAlignment) {
  EXPECT_EQ(TypeFactory::int8()->sizeInBytes(), 1u);
  EXPECT_EQ(TypeFactory::uint16()->sizeInBytes(), 2u);
  EXPECT_EQ(TypeFactory::int32()->sizeInBytes(), 4u);
  EXPECT_EQ(TypeFactory::int32()->alignment(), 4u);
  EXPECT_TRUE(isSignedGround(GroundKind::Int16));
  EXPECT_FALSE(isSignedGround(GroundKind::UInt16));
  EXPECT_EQ(groundWidth(GroundKind::UInt32), 4u);
}

TEST(Type, PointersAreWordSized) {
  TypeRef P = TypeFactory::ptr(TypeFactory::int32());
  EXPECT_EQ(P->sizeInBytes(), 4u);
  EXPECT_EQ(P->alignment(), 4u);
  EXPECT_TRUE(P->isPointerLike());
  TypeRef A =
      TypeFactory::arrayBase(TypeFactory::int32(), ArraySize::literal(8));
  EXPECT_EQ(A->sizeInBytes(), 4u); // It is a pointer to the base.
  EXPECT_TRUE(A->isPointerLike());
}

TEST(Type, GroundSingletons) {
  EXPECT_EQ(TypeFactory::int32(), TypeFactory::int32());
  EXPECT_EQ(TypeFactory::top(), TypeFactory::top());
  EXPECT_EQ(TypeFactory::bottom(), TypeFactory::bottom());
}

TEST(Type, StructuralEquality) {
  TypeRef A =
      TypeFactory::arrayBase(TypeFactory::int32(), ArraySize::symbolic(varId("tn")));
  TypeRef B =
      TypeFactory::arrayBase(TypeFactory::int32(), ArraySize::symbolic(varId("tn")));
  EXPECT_TRUE(typeEquals(A, B));
  TypeRef C =
      TypeFactory::arrayBase(TypeFactory::int32(), ArraySize::symbolic(varId("tm")));
  EXPECT_FALSE(typeEquals(A, C));
  TypeRef D =
      TypeFactory::arrayBase(TypeFactory::int32(), ArraySize::literal(4));
  TypeRef E =
      TypeFactory::arrayBase(TypeFactory::int32(), ArraySize::literal(4));
  EXPECT_TRUE(typeEquals(D, E));
}

TEST(Type, NominalStructEquality) {
  TypeRef S1 = TypeFactory::strct("pair", {}, 8, 4);
  TypeRef S2 = TypeFactory::strct(
      "pair", {{"a", TypeFactory::int32(), 0, 1}}, 8, 4);
  // Same name: nominally equal even with different member lists (the
  // placeholder-then-complete pattern for recursive types relies on it).
  EXPECT_TRUE(typeEquals(S1, S2));
  TypeRef S3 = TypeFactory::strct("other", {}, 8, 4);
  EXPECT_FALSE(typeEquals(S1, S3));
}

TEST(Type, MeetWithTopAndBottom) {
  TypeRef I = TypeFactory::int32();
  EXPECT_TRUE(typeEquals(typeMeet(TypeFactory::top(), I), I));
  EXPECT_TRUE(typeEquals(typeMeet(I, TypeFactory::top()), I));
  EXPECT_TRUE(typeMeet(TypeFactory::bottom(), I)->isBottom());
}

TEST(Type, MeetBaseAndInteriorArray) {
  // meet(t[n], t(n]) = t(n].
  ArraySize N = ArraySize::symbolic(varId("tmeet_n"));
  TypeRef Base = TypeFactory::arrayBase(TypeFactory::int32(), N);
  TypeRef Interior = TypeFactory::arrayInterior(TypeFactory::int32(), N);
  EXPECT_TRUE(typeEquals(typeMeet(Base, Interior), Interior));
  EXPECT_TRUE(typeEquals(typeMeet(Interior, Base), Interior));
}

TEST(Type, MeetMismatchedArraysIsBottom) {
  TypeRef A =
      TypeFactory::arrayBase(TypeFactory::int32(), ArraySize::literal(4));
  TypeRef B =
      TypeFactory::arrayBase(TypeFactory::int32(), ArraySize::literal(8));
  EXPECT_TRUE(typeMeet(A, B)->isBottom());
  // Pointer vs non-pointer.
  EXPECT_TRUE(typeMeet(A, TypeFactory::int32())->isBottom());
  // Distinct grounds.
  EXPECT_TRUE(
      typeMeet(TypeFactory::int8(), TypeFactory::int32())->isBottom());
}

TEST(Type, Printing) {
  EXPECT_EQ(TypeFactory::int32()->str(), "int32");
  EXPECT_EQ(TypeFactory::ptr(TypeFactory::int32())->str(), "int32 ptr");
  EXPECT_EQ(TypeFactory::arrayBase(TypeFactory::int32(),
                                   ArraySize::symbolic(varId("pn")))
                ->str(),
            "int32[pn]");
  EXPECT_EQ(TypeFactory::arrayInterior(TypeFactory::int32(),
                                       ArraySize::literal(8))
                ->str(),
            "int32(8]");
  EXPECT_EQ(TypeFactory::strct("thread", {}, 12, 4)->str(),
            "struct thread");
}

TEST(Type, FuncCarriesSummaryName) {
  TypeRef F = TypeFactory::func("DYNINSTstartWallTimer");
  EXPECT_EQ(F->kind(), TypeKind::Func);
  EXPECT_EQ(F->name(), "DYNINSTstartWallTimer");
  EXPECT_TRUE(F->isPointerLike());
}

} // namespace
