//===- main.cpp - The mcsafe-check command-line tool ----------------------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// Checks a piece of untrusted SPARC code against a host safety policy:
//
//   mcsafe-check prog.s policy.pol [-v] [--listing] [--conditions]
//                                  [--lint-only] [--no-lint]
//   mcsafe-check --corpus Sum [-v]
//   mcsafe-check --corpus all [--phase-table] [--metrics-json m.json]
//   mcsafe-check --list-corpus
//
// Exit status (see DESIGN.md section 8):
//   0 = safe, 1 = safety violations, 2 = malformed inputs,
//   3 = unknown (a resource budget expired first), 4 = internal error.
//
//===----------------------------------------------------------------------===//

#include "analysis/Lint.h"
#include "checker/Annotation.h"
#include "checker/CertStore.h"
#include "checker/CheckContext.h"
#include "checker/Propagation.h"
#include "checker/ParallelCheck.h"
#include "checker/Report.h"
#include "checker/SafetyChecker.h"
#include "serve/Client.h"
#include "support/FaultInjection.h"
#include "support/Governor.h"
#include "support/Io.h"
#include "support/Metrics.h"
#include "support/ThreadPool.h"
#include "support/Trace.h"
#include "corpus/Corpus.h"
#include "policy/PolicyParser.h"
#include "sparc/AsmParser.h"

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

using namespace mcsafe;
using namespace mcsafe::checker;

namespace {

/// Reads a file fully, in binary (inputs are untrusted bytes; text mode
/// would silently rewrite them on some platforms), retrying interrupted
/// syscalls. Missing/unreadable (with strerror) and empty files are
/// distinguished, not conflated.
std::optional<std::string> readFile(const std::string &Path,
                                    std::string &Error) {
  return support::readWholeFile(Path, Error);
}

void usage() {
  std::printf(
      "usage: mcsafe-check <prog.s> <policy.pol> [options]\n"
      "       mcsafe-check --corpus <name> [options]\n"
      "       mcsafe-check --corpus all [options]\n"
      "       mcsafe-check --list-corpus\n"
      "options:\n"
      "  -v             verbose: listing + conditions + statistics\n"
      "  --listing      print the per-instruction typestates (Figure 6)\n"
      "  --conditions   print the global safety preconditions (Figure 3)\n"
      "  --lint-only    run only the phase-0 dataflow lint\n"
      "  --no-lint      disable the phase-0 lint (and dead-reg pruning)\n"
      "  --jobs N       verify with N worker threads (default: hardware\n"
      "                 concurrency); verdicts are identical for any N\n"
      "  --trace FILE   write a Chrome trace_event JSON span timeline\n"
      "                 (load at chrome://tracing or ui.perfetto.dev)\n"
      "  --metrics-json FILE\n"
      "                 write all collected metrics (per-phase timings,\n"
      "                 prover/cache/pool counters) as JSON\n"
      "  --phase-table  with --corpus all: per-program phase-time\n"
      "                 breakdown in the layout of the paper's Figure 9\n"
      "  --deadline-ms N\n"
      "                 give up with verdict UNKNOWN after N milliseconds\n"
      "  --prover-steps N\n"
      "                 give up with verdict UNKNOWN after N prover\n"
      "                 queries (deterministic, unlike --deadline-ms)\n"
      "  --fail-soft    keep verifying the remaining obligations after a\n"
      "                 budget expires instead of stopping at the first\n"
      "  --no-tiers     disable the interval/difference-bound pre-solver\n"
      "                 tiers; every satisfiability query runs the full\n"
      "                 Omega test (for differential testing and timing)\n"
      "  --no-knownbits disable the known-bits (alignment) domain: no\n"
      "                 bit-pattern propagation, no divisibility atoms,\n"
      "                 no misaligned-access lint, no congruence tier\n"
      "  --no-slicing   disable sat-query slicing: no equality\n"
      "                 elimination, no connected-component\n"
      "                 decomposition, no per-component memoization\n"
      "                 (verdicts and reports are identical either way;\n"
      "                 for differential testing and timing)\n"
      "  --fault-seed N enable the deterministic fault-injection plan\n"
      "                 with seed N (needs an MCSAFE_FAULT_INJECTION\n"
      "                 build; a no-op otherwise)\n"
      "  --cert-store DIR\n"
      "                 persistent certificate store: a check whose\n"
      "                 inputs and configuration match a stored\n"
      "                 certificate revalidates it instead of re-running\n"
      "                 the pipeline (identical verdicts and reports\n"
      "                 either way); misses and corrupt entries fall\n"
      "                 back to a cold run and write a fresh\n"
      "                 certificate (counters: cert/store/* in\n"
      "                 --metrics-json)\n"
      "  --connect SOCK check on a running mcsafe-serve daemon instead\n"
      "                 of in-process; the printed report is\n"
      "                 byte-identical to a local run (rendering flags\n"
      "                 like --listing are not available)\n"
      "  --connect-timeout-ms N\n"
      "                 with --connect: bound the connect and every\n"
      "                 server response wait; a wedged daemon fails\n"
      "                 with a structured driver/internal-error instead\n"
      "                 of hanging (default 30000, 0 = wait forever)\n"
      "  --ping         with --connect: round-trip a ping and exit\n"
      "  --server-stats with --connect: print the daemon's metrics JSON\n"
      "  --shutdown     with --connect: stop the daemon\n"
      "exit codes: 0 safe, 1 unsafe, 2 malformed input, 3 unknown,\n"
      "            4 internal error\n");
}

enum class LintMode { On, Off, Only };

/// Observability state shared by the run modes: one registry for the
/// whole invocation, plus the output files requested on the command
/// line (written by main after the run).
struct Observability {
  support::MetricsRegistry Registry;
  std::string TracePath;
  std::string MetricsPath;
  bool PhaseTable = false;
};

/// Resource-governor settings from the command line, applied to every
/// check this invocation runs.
struct GovernorConfig {
  support::GovernorLimits Limits;
  bool FailSoft = false;
  /// --no-tiers: route every satisfiability query straight to Omega.
  bool EnableTiers = true;
  /// --no-knownbits: switch off the known-bits domain everywhere it
  /// surfaces (typestate, annotation, lint, congruence tier).
  bool EnableKnownBits = true;
  /// --no-slicing: solve every DNF disjunct whole instead of slicing it
  /// into variable-disjoint components (and skip the equality
  /// elimination and disjunct dedup that ride on slicing).
  bool EnableSlicing = true;
  /// MCSAFE_TRACE: stderr-trace the induction-iteration search. Read
  /// from the environment once per invocation here in the driver — the
  /// checker itself takes it as a plain per-check option.
  bool DebugTrace = false;
};

/// Reads a microsecond counter back out of the registry as seconds.
double scopeSeconds(const support::MetricsRegistry &Reg,
                    const std::string &Scope, const char *Phase) {
  return support::usToSeconds(
      Reg.value(Scope + "/phase/" + Phase + "_us").value_or(0));
}

/// Runs just the phase-0 lint and reports its findings.
int runLintOnly(const std::string &Asm, const std::string &Policy,
                bool Stats) {
  std::string Error;
  std::optional<sparc::Module> M = sparc::assemble(Asm, &Error);
  if (!M) {
    std::fprintf(stderr, "assembly error: %s\n", Error.c_str());
    return 2;
  }
  std::optional<policy::Policy> Pol = policy::parsePolicy(Policy, &Error);
  if (!Pol) {
    std::fprintf(stderr, "policy error: %s\n", Error.c_str());
    return 2;
  }
  DiagnosticEngine Diags;
  std::optional<CheckContext> Ctx = prepare(*M, *Pol, Diags);
  if (!Ctx) {
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 2;
  }
  analysis::LintResult Lint =
      analysis::runLint(Ctx->Graph, *Pol, Ctx->EntryStore, Diags);
  std::printf("lint verdict: %s\n", Lint.Rejected ? "UNSAFE" : "PASSED");
  if (Lint.Rejected)
    std::printf("%s", Diags.str().c_str());
  if (Stats)
    std::printf("lint: uninit uses %u, dead writes %u, max stack delta "
                "%lld bytes (%s)\n",
                Lint.Stats.UninitUses, Lint.Stats.DeadRegWrites,
                static_cast<long long>(Lint.Stats.MaxStackDelta),
                Lint.Stats.StackDeltaBounded ? "bounded" : "unbounded");
  return Lint.Rejected ? 1 : 0;
}

int runCheck(const std::string &Asm, const std::string &Policy,
             bool Listing, bool Conditions, bool Stats, LintMode Lint,
             unsigned Jobs, const GovernorConfig &Gov, Observability &Obs,
             CertStore *Certs) {
  if (Lint == LintMode::Only)
    return runLintOnly(Asm, Policy, Stats);
  SafetyChecker::Options Opts;
  Opts.Metrics = &Obs.Registry;
  Opts.Certs = Certs;
  Opts.Limits = Gov.Limits;
  Opts.FailSoft = Gov.FailSoft;
  Opts.ProverOpts.EnableTiers = Gov.EnableTiers;
  Opts.ProverOpts.EnableSlicing = Gov.EnableSlicing;
  Opts.KnownBits = Gov.EnableKnownBits;
  Opts.Global.DebugTrace = Gov.DebugTrace;
  if (Lint == LintMode::Off) {
    Opts.Lint = false;
    Opts.PruneDeadRegs = false;
  }
  if (Jobs == 0)
    Jobs = support::ThreadPool::hardwareConcurrency();
  std::unique_ptr<support::ThreadPool> Pool;
  if (Jobs > 1) {
    Pool = std::make_unique<support::ThreadPool>(Jobs);
    Opts.Global.Pool = Pool.get();
  }
  SafetyChecker Checker(Opts);
  CheckReport R = Checker.checkSource(Asm, Policy);
  if (!R.InputsOk) {
    std::fprintf(stderr, "%s", R.Diags.str().c_str());
    for (const CheckFailure &F : R.Failures)
      std::fprintf(stderr, "failure: %s\n", F.str().c_str());
    return exitCode(R.Verdict);
  }

  if (Listing || Conditions) {
    // Re-run the front phases to render the intermediate views (the
    // checker API deliberately keeps CheckReport small).
    std::string Error;
    std::optional<sparc::Module> M = sparc::assemble(Asm, &Error);
    std::optional<policy::Policy> Pol = policy::parsePolicy(Policy, &Error);
    DiagnosticEngine Diags;
    if (M && Pol) {
      std::optional<CheckContext> Ctx = prepare(*M, *Pol, Diags);
      if (Ctx) {
        PropagationResult Prop = propagate(*Ctx);
        if (Listing) {
          std::printf("--- typestates (Figure 6 view) ---\n%s\n",
                      renderTypestateListing(*Ctx, Prop).c_str());
        }
        if (Conditions) {
          AnnotationResult Annot = annotateAndVerifyLocal(*Ctx, Prop);
          std::printf("--- global safety preconditions ---\n%s\n",
                      renderObligations(*Ctx, Annot).c_str());
        }
      }
    }
  }

  std::printf("verdict: %s%s\n", verdictName(R.Verdict),
              R.LintRejected ? " (rejected by phase-0 lint)" : "");
  if (!R.Safe)
    std::printf("%s", R.Diags.str().c_str());
  for (const CheckFailure &F : R.Failures)
    std::printf("failure: %s\n", F.str().c_str());
  if (Stats) {
    std::printf(
        "instructions: %u, branches: %u, loops: %u (%u inner), "
        "calls: %u (%u trusted)\n",
        R.Chars.Instructions, R.Chars.Branches, R.Chars.Loops,
        R.Chars.InnerLoops, R.Chars.Calls, R.Chars.TrustedCalls);
    if (Lint == LintMode::On)
      std::printf("lint: uninit uses %u, dead writes %u, max stack delta "
                  "%lld bytes (%s)\n",
                  R.Chars.LintUninitUses, R.Chars.DeadRegWrites,
                  static_cast<long long>(R.Chars.MaxStackDelta),
                  R.Chars.StackDeltaBounded ? "bounded" : "unbounded");
    std::printf(
        "global conditions: %llu (proved %llu, failed %llu, quick %llu), "
        "invariants: %llu (+%llu reused)\n",
        static_cast<unsigned long long>(R.Chars.GlobalConditions),
        static_cast<unsigned long long>(R.Global.ObligationsProved),
        static_cast<unsigned long long>(R.Global.ObligationsFailed),
        static_cast<unsigned long long>(R.Global.QuickDischarges),
        static_cast<unsigned long long>(R.Global.InvariantsSynthesized),
        static_cast<unsigned long long>(R.Global.InvariantReuses));
    std::printf(
        "prover: %llu validity + %llu sat queries, %llu cache hits, "
        "%llu evictions, %llu budget exhaustions, %llu speculative "
        "(jobs %u)\n",
        static_cast<unsigned long long>(R.ProverStats.ValidityQueries),
        static_cast<unsigned long long>(R.ProverStats.SatQueries),
        static_cast<unsigned long long>(R.ProverStats.CacheHits),
        static_cast<unsigned long long>(R.ProverStats.CacheEvictions),
        static_cast<unsigned long long>(R.ProverStats.BudgetExhaustions),
        static_cast<unsigned long long>(R.Global.SpeculativeQueries), Jobs);
    // Wall-clock values come from the registry — CheckReport holds only
    // deterministic data.
    const support::MetricsRegistry &Reg = Obs.Registry;
    const std::string Scope = "check";
    std::printf("times: lint %.4fs, typestate %.4fs (%llu visits), "
                "annotation+local %.4fs, global %.4fs, total %.4fs\n",
                scopeSeconds(Reg, Scope, "lint"),
                scopeSeconds(Reg, Scope, "typestate"),
                static_cast<unsigned long long>(R.TypestateNodeVisits),
                scopeSeconds(Reg, Scope, "annotation"),
                scopeSeconds(Reg, Scope, "global"),
                scopeSeconds(Reg, Scope, "total"));
  }
  return exitCode(R.Verdict);
}

/// Prints the per-program phase breakdown in the layout of the paper's
/// Figure 9: programs as columns; characteristics, then per-phase times,
/// as rows. All values come from the metrics registry.
void printPhaseTable(const support::MetricsRegistry &Reg,
                     const ParallelCheckResult &R) {
  std::vector<const ParallelCheckResult::Program *> Ps;
  for (const ParallelCheckResult::Program &P : R.Programs)
    if (P.Report.InputsOk)
      Ps.push_back(&P);
  if (Ps.empty())
    return;

  // Rows are collected first so every column's width can be computed
  // from the content actually rendered (a fixed width truncates or
  // misaligns once a program name, label, or counter outgrows it).
  std::vector<std::pair<std::string, std::vector<std::string>>> Rows;
  auto Row = [&](const char *Label, auto Cell) {
    std::vector<std::string> Cells;
    Cells.reserve(Ps.size());
    for (const auto *P : Ps)
      Cells.push_back(Cell(*P));
    Rows.emplace_back(Label, std::move(Cells));
  };
  auto Num = [](uint64_t V) { return std::to_string(V); };
  auto Sec = [&](const ParallelCheckResult::Program &P, const char *Ph) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.4f",
                  scopeSeconds(Reg, "program/" + P.Name, Ph));
    return std::string(Buf);
  };

  Row("program", [](const auto &P) { return P.Name; });
  Row("instructions",
      [&](const auto &P) { return Num(P.Report.Chars.Instructions); });
  Row("branches",
      [&](const auto &P) { return Num(P.Report.Chars.Branches); });
  Row("loops", [&](const auto &P) { return Num(P.Report.Chars.Loops); });
  Row("inner loops",
      [&](const auto &P) { return Num(P.Report.Chars.InnerLoops); });
  Row("trusted calls",
      [&](const auto &P) { return Num(P.Report.Chars.TrustedCalls); });
  Row("global conditions",
      [&](const auto &P) { return Num(P.Report.Chars.GlobalConditions); });
  auto Cnt = [&](const ParallelCheckResult::Program &P, const char *Name) {
    return Num(uint64_t(
        Reg.value("program/" + P.Name + "/" + Name).value_or(0)));
  };
  Row("tier congruence hits",
      [&](const auto &P) { return Cnt(P, "prover/tier/congruence/hits"); });
  Row("tier interval hits",
      [&](const auto &P) { return Cnt(P, "prover/tier/interval/hits"); });
  Row("tier dbm hits",
      [&](const auto &P) { return Cnt(P, "prover/tier/dbm/hits"); });
  Row("tier omega hits",
      [&](const auto &P) { return Cnt(P, "prover/tier/omega/hits"); });
  Row("slice components",
      [&](const auto &P) { return Cnt(P, "prover/slice/components"); });
  Row("slice eq eliminated",
      [&](const auto &P) { return Cnt(P, "prover/slice/eq_eliminated"); });
  Row("slice cache hits",
      [&](const auto &P) { return Cnt(P, "prover/slice/cache_hits"); });
  Row("slice omega avoided",
      [&](const auto &P) { return Cnt(P, "prover/slice/omega_avoided"); });
  Row("lint (s)", [&](const auto &P) { return Sec(P, "lint"); });
  Row("typestate (s)", [&](const auto &P) { return Sec(P, "typestate"); });
  Row("annotation+local (s)",
      [&](const auto &P) { return Sec(P, "annotation"); });
  Row("global verify (s)", [&](const auto &P) { return Sec(P, "global"); });
  Row("total (s)", [&](const auto &P) { return Sec(P, "total"); });

  size_t LabelWidth = 0;
  for (const auto &[Label, Cells] : Rows) {
    (void)Cells;
    LabelWidth = std::max(LabelWidth, Label.size());
  }
  std::vector<size_t> ColWidth(Ps.size(), 0);
  for (const auto &[Label, Cells] : Rows) {
    (void)Label;
    for (size_t I = 0; I < Cells.size(); ++I)
      ColWidth[I] = std::max(ColWidth[I], Cells[I].size());
  }

  std::printf("--- phase breakdown (Figure 9 layout) ---\n");
  for (const auto &[Label, Cells] : Rows) {
    std::printf("%-*s", static_cast<int>(LabelWidth), Label.c_str());
    for (size_t I = 0; I < Cells.size(); ++I)
      std::printf("  %*s", static_cast<int>(ColWidth[I]), Cells[I].c_str());
    std::printf("\n");
  }
}

/// Checks the whole corpus, possibly in parallel. The non-verbose output
/// is the deterministic batch report — byte-identical for any job count.
int runCorpusAll(bool Stats, LintMode Lint, unsigned Jobs,
                 const GovernorConfig &Gov, Observability &Obs,
                 CertStore *Certs) {
  ParallelCheckOptions Opts;
  Opts.Jobs = Jobs;
  Opts.Metrics = &Obs.Registry;
  Opts.Check.Certs = Certs;
  Opts.Check.Limits = Gov.Limits;
  Opts.Check.FailSoft = Gov.FailSoft;
  Opts.Check.ProverOpts.EnableTiers = Gov.EnableTiers;
  Opts.Check.ProverOpts.EnableSlicing = Gov.EnableSlicing;
  Opts.Check.KnownBits = Gov.EnableKnownBits;
  Opts.Check.Global.DebugTrace = Gov.DebugTrace;
  if (Lint == LintMode::Off) {
    Opts.Check.Lint = false;
    Opts.Check.PruneDeadRegs = false;
  }
  std::vector<CheckJob> Jobs2;
  for (const corpus::CorpusProgram &P : corpus::corpus())
    Jobs2.push_back({P.Name, P.Asm, P.Policy});
  ParallelCheckResult R = checkJobs(Jobs2, Opts);

  std::printf("%s", renderParallelReport(R).c_str());
  unsigned Counts[5] = {0, 0, 0, 0, 0};
  for (const ParallelCheckResult::Program &P : R.Programs)
    ++Counts[exitCode(P.Report.Verdict)];
  std::printf("total: %zu programs, %u safe, %u unsafe, %u malformed, "
              "%u unknown, %u errors\n",
              R.Programs.size(), Counts[0], Counts[1], Counts[2], Counts[3],
              Counts[4]);

  const support::MetricsRegistry &Reg = Obs.Registry;
  if (Obs.PhaseTable)
    printPhaseTable(Reg, R);

  if (Stats) {
    double LintS = 0, Typestate = 0, Annotation = 0, Global = 0;
    uint64_t Validity = 0, Sat = 0, Hits = 0, Speculative = 0;
    for (const ParallelCheckResult::Program &P : R.Programs) {
      std::string Scope = "program/" + P.Name;
      LintS += scopeSeconds(Reg, Scope, "lint");
      Typestate += scopeSeconds(Reg, Scope, "typestate");
      Annotation += scopeSeconds(Reg, Scope, "annotation");
      Global += scopeSeconds(Reg, Scope, "global");
      Validity += P.Report.ProverStats.ValidityQueries;
      Sat += P.Report.ProverStats.SatQueries;
      Hits += P.Report.ProverStats.CacheHits;
      Speculative += P.Report.Global.SpeculativeQueries;
    }
    std::printf("jobs: %u, wall: %.4fs (cpu: lint %.4fs, typestate %.4fs, "
                "annotation+local %.4fs, global %.4fs)\n",
                R.JobsUsed,
                support::usToSeconds(Reg.value("parallel/wall_us").value_or(0)),
                LintS, Typestate, Annotation, Global);
    std::printf("prover: %llu validity + %llu sat queries, %llu per-prover "
                "cache hits, %llu speculative\n",
                static_cast<unsigned long long>(Validity),
                static_cast<unsigned long long>(Sat),
                static_cast<unsigned long long>(Hits),
                static_cast<unsigned long long>(Speculative));
    std::printf("shared cache: %lld hits, %lld misses, %lld insertions, "
                "%lld evictions, %lld entries\n",
                static_cast<long long>(
                    Reg.value("cache/shared/hits").value_or(0)),
                static_cast<long long>(
                    Reg.value("cache/shared/misses").value_or(0)),
                static_cast<long long>(
                    Reg.value("cache/shared/insertions").value_or(0)),
                static_cast<long long>(
                    Reg.value("cache/shared/evictions").value_or(0)),
                static_cast<long long>(
                    Reg.value("cache/shared/entries").value_or(0)));
    std::printf("pool: %lld tasks (%lld steals), idle %.4fs\n",
                static_cast<long long>(
                    Reg.value("pool/executed").value_or(0)),
                static_cast<long long>(Reg.value("pool/steals").value_or(0)),
                support::usToSeconds(Reg.value("pool/idle_us").value_or(0)));
  }
  // The most alarming verdict in the batch wins the exit status:
  // internal errors over malformed inputs over unknowns over violations.
  if (Counts[4])
    return 4;
  if (Counts[2])
    return 2;
  if (Counts[3])
    return 3;
  return Counts[1] ? 1 : 0;
}

/// The request-side image of this invocation's checking options. The
/// defaults mirror the local code paths exactly, which is what makes
/// daemon output byte-comparable to a local run.
serve::CheckRequestMsg makeRequest(uint64_t Id, std::string Name,
                                   std::string Asm, std::string Policy,
                                   LintMode Lint,
                                   const GovernorConfig &Gov) {
  serve::CheckRequestMsg Req;
  Req.ReqId = Id;
  Req.Name = std::move(Name);
  Req.Asm = std::move(Asm);
  Req.Policy = std::move(Policy);
  Req.DeadlineMs = Gov.Limits.DeadlineMs;
  Req.ProverSteps = Gov.Limits.ProverSteps;
  Req.Flags = 0;
  if (Lint != LintMode::Off)
    Req.Flags |= serve::ReqFlagLint;
  if (Gov.EnableKnownBits)
    Req.Flags |= serve::ReqFlagKnownBits;
  if (Gov.EnableTiers)
    Req.Flags |= serve::ReqFlagTiers;
  if (Gov.EnableSlicing)
    Req.Flags |= serve::ReqFlagSlicing;
  if (Gov.FailSoft)
    Req.Flags |= serve::ReqFlagFailSoft;
  if (Gov.DebugTrace)
    Req.Flags |= serve::ReqFlagTrace;
  return Req;
}

/// Renders a remote single-check report exactly as runCheck renders a
/// local one (minus the stats/listing extras, which are rejected with
/// --connect).
int renderRemoteSingle(const CheckReport &R) {
  if (!R.InputsOk) {
    std::fprintf(stderr, "%s", R.Diags.str().c_str());
    for (const CheckFailure &F : R.Failures)
      std::fprintf(stderr, "failure: %s\n", F.str().c_str());
    return exitCode(R.Verdict);
  }
  std::printf("verdict: %s%s\n", verdictName(R.Verdict),
              R.LintRejected ? " (rejected by phase-0 lint)" : "");
  if (!R.Safe)
    std::printf("%s", R.Diags.str().c_str());
  for (const CheckFailure &F : R.Failures)
    std::printf("failure: %s\n", F.str().c_str());
  return exitCode(R.Verdict);
}

/// Transport-level failures against the daemon (connection refused,
/// no response within --connect-timeout-ms, mid-stream disconnect) are
/// reported in the same structured form as in-report failures rather
/// than as a bare string, so scripted callers can parse them uniformly.
int transportFailure(const std::string &Error) {
  CheckFailure F{CheckPhase::Driver, FailureKind::InternalError,
                 std::nullopt, Error};
  std::fprintf(stderr, "failure: %s\n", F.str().c_str());
  return 4;
}

int runConnectSingle(serve::Client &Conn, std::string Name,
                     std::string Asm, std::string Policy, LintMode Lint,
                     const GovernorConfig &Gov) {
  serve::CheckRequestMsg Req =
      makeRequest(1, std::move(Name), std::move(Asm), std::move(Policy),
                  Lint, Gov);
  serve::CheckResponseMsg Resp;
  std::string Error;
  if (!Conn.check(Req, Resp, Error))
    return transportFailure(Error);
  return renderRemoteSingle(Resp.Report);
}

/// Checks the whole corpus on the daemon: every request is pipelined up
/// front, responses are matched by id (a shed response can overtake an
/// in-flight one), and the rendered batch report plus totals line are
/// byte-identical to a local `--corpus all` run.
int runConnectCorpusAll(serve::Client &Conn, LintMode Lint,
                        const GovernorConfig &Gov) {
  const std::vector<corpus::CorpusProgram> &Programs = corpus::corpus();
  std::string Error;
  for (size_t I = 0; I < Programs.size(); ++I) {
    serve::CheckRequestMsg Req =
        makeRequest(I, Programs[I].Name, Programs[I].Asm,
                    Programs[I].Policy, Lint, Gov);
    if (!Conn.sendCheck(Req, Error))
      return transportFailure(Error);
  }
  ParallelCheckResult R;
  R.Programs.resize(Programs.size());
  for (size_t I = 0; I < Programs.size(); ++I)
    R.Programs[I].Name = Programs[I].Name;
  for (size_t I = 0; I < Programs.size(); ++I) {
    serve::CheckResponseMsg Resp;
    if (!Conn.recvCheck(Resp, Error))
      return transportFailure(Error);
    if (Resp.ReqId >= R.Programs.size())
      return transportFailure("bogus response id from server");
    R.Programs[Resp.ReqId].Report = std::move(Resp.Report);
  }
  std::printf("%s", renderParallelReport(R).c_str());
  unsigned Counts[5] = {0, 0, 0, 0, 0};
  for (const ParallelCheckResult::Program &P : R.Programs)
    ++Counts[exitCode(P.Report.Verdict)];
  std::printf("total: %zu programs, %u safe, %u unsafe, %u malformed, "
              "%u unknown, %u errors\n",
              R.Programs.size(), Counts[0], Counts[1], Counts[2],
              Counts[3], Counts[4]);
  if (Counts[4])
    return 4;
  if (Counts[2])
    return 2;
  if (Counts[3])
    return 3;
  return Counts[1] ? 1 : 0;
}

} // namespace

int main(int argc, char **argv) {
  bool Listing = false, Conditions = false, Stats = false;
  LintMode Lint = LintMode::On;
  std::string CorpusName;
  std::vector<std::string> Files;
  bool ListCorpus = false;
  unsigned Jobs = 0; // 0 = hardware concurrency.
  Observability Obs;
  GovernorConfig Gov;
  std::optional<uint64_t> FaultSeed;
  std::string CertDir;
  std::string ConnectPath;
  uint64_t ConnectTimeoutMs = 30000;
  bool Ping = false, Shutdown = false, ServerStats = false;

  // The trace switch is read from the environment once per invocation,
  // here in the driver; it reaches the verifier as a plain option (a
  // daemon gets it per request instead).
  if (const char *E = std::getenv("MCSAFE_TRACE"))
    Gov.DebugTrace = *E != '\0';

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    // Matches "--flag V" and "--flag=V"; nullopt when the value is
    // missing (caller prints usage).
    auto isFlag = [&](const char *Name) {
      return Arg == Name ||
             Arg.rfind(std::string(Name) + "=", 0) == 0;
    };
    auto flagValue = [&](const char *Name) -> std::optional<std::string> {
      if (Arg == Name) {
        if (I + 1 >= argc)
          return std::nullopt;
        return std::string(argv[++I]);
      }
      return Arg.substr(std::strlen(Name) + 1);
    };

    // Parses the value of a numeric flag into *Out; false (after its own
    // diagnostic) when the value is missing, non-numeric, or above Max.
    auto numericFlag = [&](const char *Name, uint64_t Max,
                           uint64_t *Out) -> bool {
      std::optional<std::string> Value = flagValue(Name);
      if (!Value) {
        usage();
        return false;
      }
      char *End = nullptr;
      unsigned long long N = std::strtoull(Value->c_str(), &End, 10);
      if (Value->empty() || *End != '\0' || N > Max) {
        std::fprintf(stderr, "invalid %s value '%s'\n", Name,
                     Value->c_str());
        return false;
      }
      *Out = N;
      return true;
    };

    if (isFlag("--deadline-ms")) {
      uint64_t Ms = 0;
      if (!numericFlag("--deadline-ms", UINT32_MAX, &Ms))
        return 2;
      Gov.Limits.DeadlineMs = static_cast<uint32_t>(Ms);
    } else if (isFlag("--prover-steps")) {
      if (!numericFlag("--prover-steps", UINT64_MAX,
                       &Gov.Limits.ProverSteps))
        return 2;
    } else if (Arg == "--fail-soft") {
      Gov.FailSoft = true;
    } else if (Arg == "--no-tiers") {
      Gov.EnableTiers = false;
    } else if (Arg == "--no-knownbits") {
      Gov.EnableKnownBits = false;
    } else if (Arg == "--no-slicing") {
      Gov.EnableSlicing = false;
    } else if (isFlag("--fault-seed")) {
      uint64_t Seed = 0;
      if (!numericFlag("--fault-seed", UINT64_MAX, &Seed))
        return 2;
      FaultSeed = Seed;
    } else if (isFlag("--jobs")) {
      std::optional<std::string> Value = flagValue("--jobs");
      if (!Value) {
        usage();
        return 2;
      }
      char *End = nullptr;
      unsigned long N = std::strtoul(Value->c_str(), &End, 10);
      if (Value->empty() || *End != '\0' || N == 0 || N > 1024) {
        std::fprintf(stderr, "invalid --jobs value '%s'\n", Value->c_str());
        return 2;
      }
      Jobs = static_cast<unsigned>(N);
    } else if (isFlag("--cert-store")) {
      std::optional<std::string> Value = flagValue("--cert-store");
      if (!Value || Value->empty()) {
        usage();
        return 2;
      }
      CertDir = *Value;
    } else if (isFlag("--trace")) {
      std::optional<std::string> Value = flagValue("--trace");
      if (!Value || Value->empty()) {
        usage();
        return 2;
      }
      Obs.TracePath = *Value;
    } else if (isFlag("--metrics-json")) {
      std::optional<std::string> Value = flagValue("--metrics-json");
      if (!Value || Value->empty()) {
        usage();
        return 2;
      }
      Obs.MetricsPath = *Value;
    } else if (isFlag("--connect")) {
      std::optional<std::string> Value = flagValue("--connect");
      if (!Value || Value->empty()) {
        usage();
        return 2;
      }
      ConnectPath = *Value;
    } else if (isFlag("--connect-timeout-ms")) {
      if (!numericFlag("--connect-timeout-ms", UINT32_MAX,
                       &ConnectTimeoutMs))
        return 2;
    } else if (Arg == "--ping") {
      Ping = true;
    } else if (Arg == "--shutdown") {
      Shutdown = true;
    } else if (Arg == "--server-stats") {
      ServerStats = true;
    } else if (Arg == "--phase-table") {
      Obs.PhaseTable = true;
    } else if (Arg == "-v") {
      Listing = Conditions = Stats = true;
    } else if (Arg == "--listing") {
      Listing = true;
    } else if (Arg == "--conditions") {
      Conditions = true;
    } else if (Arg == "--lint-only") {
      Lint = LintMode::Only;
    } else if (Arg == "--no-lint") {
      Lint = LintMode::Off;
    } else if (Arg == "--list-corpus") {
      ListCorpus = true;
    } else if (Arg == "--corpus") {
      if (I + 1 >= argc) {
        usage();
        return 2;
      }
      CorpusName = argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      Files.push_back(Arg);
    }
  }

  if (ListCorpus) {
    for (const corpus::CorpusProgram &P : corpus::corpus())
      std::printf("%-14s %s\n", P.Name.c_str(),
                  P.ExpectSafe ? "(verifies)" : "(has violations)");
    return 0;
  }

  // Install the tracer before any instrumented work runs.
  std::unique_ptr<support::Tracer> Tracer;
  if (!Obs.TracePath.empty()) {
    Tracer = std::make_unique<support::Tracer>();
    support::Tracer::setGlobal(Tracer.get());
  }

  // A --fault-seed installs the deterministic fault plan for the whole
  // run. The fault points compile to nothing unless the binary was built
  // with -DMCSAFE_FAULT_INJECTION=ON, so warn rather than surprise.
  std::unique_ptr<support::FaultPlan> Plan;
  if (FaultSeed) {
#if !defined(MCSAFE_FAULT_INJECTION)
    std::fprintf(stderr,
                 "warning: this build has no fault-injection points; "
                 "--fault-seed %llu is a no-op\n",
                 static_cast<unsigned long long>(*FaultSeed));
#endif
    Plan = std::make_unique<support::FaultPlan>(*FaultSeed);
    support::FaultPlan::install(Plan.get());
  }

  std::unique_ptr<CertStore> Certs;
  if (!CertDir.empty())
    Certs = std::make_unique<CertStore>(CertDir);

  // Pre-register the slicing counters (single-check scope) so a metrics
  // dump always carries the full set at zero — even when the check
  // bails before the prover runs, or slicing is off.
  for (const char *Name :
       {"check/prover/slice/queries", "check/prover/slice/disjuncts_deduped",
        "check/prover/slice/eq_eliminated", "check/prover/slice/components",
        "check/prover/slice/multi_component",
        "check/prover/slice/cache_hits", "check/prover/slice/cache_misses",
        "check/prover/slice/omega_avoided"})
    Obs.Registry.counter(Name).inc(0);

  auto Run = [&]() -> int {
    if (ConnectPath.empty() && (Ping || Shutdown || ServerStats)) {
      std::fprintf(stderr,
                   "--ping/--shutdown/--server-stats need --connect\n");
      return 2;
    }
    if (!ConnectPath.empty()) {
      // The daemon sends back report bytes, not intermediate views, so
      // everything that re-runs front phases locally is rejected rather
      // than silently ignored.
      if (Listing || Conditions || Stats || Lint == LintMode::Only ||
          Obs.PhaseTable || !CertDir.empty()) {
        std::fprintf(stderr,
                     "--listing/--conditions/-v/--lint-only/"
                     "--phase-table/--cert-store are not available with "
                     "--connect\n");
        return 2;
      }
      serve::Client Conn;
      Conn.setTimeoutMs(static_cast<unsigned>(ConnectTimeoutMs));
      std::string Error;
      if (!Conn.connect(ConnectPath, Error))
        return transportFailure(Error);
      if (Ping) {
        if (!Conn.ping(Error))
          return transportFailure(Error);
        std::printf("pong\n");
        return 0;
      }
      if (ServerStats) {
        std::string Json;
        if (!Conn.serverStats(Json, Error))
          return transportFailure(Error);
        std::printf("%s\n", Json.c_str());
        return 0;
      }
      if (Shutdown) {
        if (!Conn.shutdownServer(Error))
          return transportFailure(Error);
        std::printf("server stopped\n");
        return 0;
      }
      if (!CorpusName.empty()) {
        if (CorpusName == "all")
          return runConnectCorpusAll(Conn, Lint, Gov);
        for (const corpus::CorpusProgram &P : corpus::corpus())
          if (P.Name == CorpusName)
            return runConnectSingle(Conn, P.Name, P.Asm, P.Policy, Lint,
                                    Gov);
        std::fprintf(stderr, "unknown corpus program '%s'\n",
                     CorpusName.c_str());
        return 2;
      }
      if (Files.size() != 2) {
        usage();
        return 2;
      }
      std::string ReadError;
      std::optional<std::string> Asm = readFile(Files[0], ReadError);
      if (!Asm) {
        CheckFailure F{CheckPhase::Input, FailureKind::MalformedAssembly,
                       std::nullopt, ReadError};
        std::fprintf(stderr, "failure: %s\n", F.str().c_str());
        return exitCode(CheckVerdict::MalformedInput);
      }
      std::optional<std::string> Policy = readFile(Files[1], ReadError);
      if (!Policy) {
        CheckFailure F{CheckPhase::Input, FailureKind::MalformedPolicy,
                       std::nullopt, ReadError};
        std::fprintf(stderr, "failure: %s\n", F.str().c_str());
        return exitCode(CheckVerdict::MalformedInput);
      }
      return runConnectSingle(Conn, Files[0], std::move(*Asm),
                              std::move(*Policy), Lint, Gov);
    }
    if (!CorpusName.empty()) {
      if (CorpusName == "all")
        return runCorpusAll(Stats, Lint, Jobs, Gov, Obs, Certs.get());
      for (const corpus::CorpusProgram &P : corpus::corpus())
        if (P.Name == CorpusName)
          return runCheck(P.Asm, P.Policy, Listing, Conditions, Stats,
                          Lint, Jobs, Gov, Obs, Certs.get());
      std::fprintf(stderr, "unknown corpus program '%s'\n",
                   CorpusName.c_str());
      return 2;
    }
    if (Files.size() != 2) {
      usage();
      return 2;
    }
    // Unreadable inputs are reported as structured MalformedInput
    // failures (path + cause), not a bare usage dump: the command line
    // was well-formed, the input was not.
    std::string ReadError;
    std::optional<std::string> Asm = readFile(Files[0], ReadError);
    if (!Asm) {
      CheckFailure F{CheckPhase::Input, FailureKind::MalformedAssembly,
                     std::nullopt, ReadError};
      std::fprintf(stderr, "failure: %s\n", F.str().c_str());
      return exitCode(CheckVerdict::MalformedInput);
    }
    std::optional<std::string> Policy = readFile(Files[1], ReadError);
    if (!Policy) {
      CheckFailure F{CheckPhase::Input, FailureKind::MalformedPolicy,
                     std::nullopt, ReadError};
      std::fprintf(stderr, "failure: %s\n", F.str().c_str());
      return exitCode(CheckVerdict::MalformedInput);
    }
    return runCheck(*Asm, *Policy, Listing, Conditions, Stats, Lint, Jobs,
                    Gov, Obs, Certs.get());
  };
  // Everything input-reachable returns a structured verdict; anything
  // that still escapes as an exception is an internal error, reported on
  // stderr with the dedicated exit code rather than a terminate().
  int Ret;
  try {
    Ret = Run();
  } catch (const std::exception &E) {
    std::fprintf(stderr, "internal error: %s\n", E.what());
    Ret = 4;
  } catch (...) {
    std::fprintf(stderr, "internal error: non-standard exception\n");
    Ret = 4;
  }
  if (Certs)
    Certs->publish(Obs.Registry);
  if (Plan) {
    support::FaultPlan::install(nullptr);
    Obs.Registry.counter("fault/fired").inc(Plan->firedCount());
    Obs.Registry.gauge("fault/seed").set(
        static_cast<int64_t>(Plan->seed()));
  }

  if (Tracer) {
    support::Tracer::setGlobal(nullptr);
    std::ofstream Out(Obs.TracePath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", Obs.TracePath.c_str());
      return 2;
    }
    Tracer->writeJson(Out);
  }
  if (!Obs.MetricsPath.empty()) {
    std::ofstream Out(Obs.MetricsPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", Obs.MetricsPath.c_str());
      return 2;
    }
    Obs.Registry.writeJson(Out);
  }
  return Ret;
}
