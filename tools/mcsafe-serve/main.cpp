//===- main.cpp - The mcsafe-serve daemon ---------------------------------===//
//
// Part of mcsafe, a reproduction of "Safety Checking of Machine Code"
// (Xu, Miller, Reps; PLDI 2000).
//
// A resident verification server: listens on a Unix-domain socket,
// keeps the prover cache, certificate store, and thread pool warm across
// requests, and answers `mcsafe-check --connect` with reports that are
// byte-identical to local runs.
//
//   mcsafe-serve --socket /run/mcsafe.sock [--jobs N] [--max-queue N]
//                [--cert-store DIR] [--deadline-cap-ms N]
//                [--prover-steps-cap N] [--memory-cap-mb N]
//                [--isolate-workers] [--worker-restarts N]
//                [--worker-grace-ms N] [--quarantine-after K]
//                [--quarantine-file FILE] [--metrics-json FILE]
//                [--fault-seed N]
//
// Stops cleanly on SIGINT/SIGTERM (or a client Shutdown message); exit
// status 0 on a clean stop, 2 on bad arguments or a failed bind.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"
#include "support/FaultInjection.h"
#include "support/Metrics.h"

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>

using namespace mcsafe;

namespace {

serve::Server *GServer = nullptr;

void onStopSignal(int) {
  // requestStop is async-signal-safe: an atomic store + a pipe write.
  if (GServer)
    GServer->requestStop();
}

void usage() {
  std::printf(
      "usage: mcsafe-serve --socket PATH [options]\n"
      "options:\n"
      "  --socket PATH  Unix-domain socket to listen on (required)\n"
      "  --jobs N       checker worker threads (default: hardware\n"
      "                 concurrency)\n"
      "  --max-queue N  admitted-but-unstarted request bound; above it\n"
      "                 new requests are shed with verdict UNKNOWN\n"
      "                 (default: 256)\n"
      "  --cert-store DIR\n"
      "                 persistent certificate store shared by all\n"
      "                 requests\n"
      "  --deadline-cap-ms N\n"
      "                 clamp every request's deadline budget to N ms\n"
      "  --prover-steps-cap N\n"
      "                 clamp every request's prover-step budget to N\n"
      "  --memory-cap-mb N\n"
      "                 per-check memory budget in MiB; with\n"
      "                 --isolate-workers it also arms a hard RLIMIT_AS\n"
      "                 backstop in each worker\n"
      "  --isolate-workers\n"
      "                 run every check in one of --jobs supervised\n"
      "                 worker subprocesses; a worker crash, hang, or\n"
      "                 OOM kill becomes a structured UNKNOWN for its\n"
      "                 request and the daemon keeps serving\n"
      "  --worker-restarts N\n"
      "                 park a worker slot after N consecutive abnormal\n"
      "                 deaths (default 0 = restart forever, with\n"
      "                 capped exponential backoff)\n"
      "  --worker-grace-ms N\n"
      "                 extra time past a request's deadline before a\n"
      "                 worker is declared hung, and the SIGTERM ->\n"
      "                 SIGKILL escalation window (default 1000)\n"
      "  --quarantine-after K\n"
      "                 quarantine an input's content digest after it\n"
      "                 crashes K workers; later identical inputs get\n"
      "                 UNKNOWN immediately (default 3, 0 disables)\n"
      "  --quarantine-file FILE\n"
      "                 persist the quarantine poison list across\n"
      "                 daemon restarts\n"
      "  --metrics-json FILE\n"
      "                 write serve/* and cert/store/* counters as JSON\n"
      "                 on shutdown\n"
      "  --fault-seed N enable the deterministic fault-injection plan\n"
      "                 (needs an MCSAFE_FAULT_INJECTION build)\n");
}

} // namespace

int main(int argc, char **argv) {
  serve::ServerOptions Opts;
  std::string MetricsPath;
  std::optional<uint64_t> FaultSeed;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    auto isFlag = [&](const char *Name) {
      return Arg == Name || Arg.rfind(std::string(Name) + "=", 0) == 0;
    };
    auto flagValue = [&](const char *Name) -> std::optional<std::string> {
      if (Arg == Name) {
        if (I + 1 >= argc)
          return std::nullopt;
        return std::string(argv[++I]);
      }
      return Arg.substr(std::strlen(Name) + 1);
    };
    auto numericFlag = [&](const char *Name, uint64_t Max,
                           uint64_t *Out) -> bool {
      std::optional<std::string> Value = flagValue(Name);
      if (!Value) {
        usage();
        return false;
      }
      char *End = nullptr;
      unsigned long long N = std::strtoull(Value->c_str(), &End, 10);
      if (Value->empty() || *End != '\0' || N > Max) {
        std::fprintf(stderr, "invalid %s value '%s'\n", Name,
                     Value->c_str());
        return false;
      }
      *Out = N;
      return true;
    };

    if (isFlag("--socket")) {
      std::optional<std::string> Value = flagValue("--socket");
      if (!Value || Value->empty()) {
        usage();
        return 2;
      }
      Opts.SocketPath = *Value;
    } else if (isFlag("--jobs")) {
      uint64_t N = 0;
      if (!numericFlag("--jobs", 1024, &N))
        return 2;
      if (N == 0) {
        std::fprintf(stderr, "invalid --jobs value '0'\n");
        return 2;
      }
      Opts.Jobs = static_cast<unsigned>(N);
    } else if (isFlag("--max-queue")) {
      uint64_t N = 0;
      if (!numericFlag("--max-queue", 1u << 20, &N))
        return 2;
      Opts.MaxQueue = static_cast<size_t>(N);
    } else if (isFlag("--cert-store")) {
      std::optional<std::string> Value = flagValue("--cert-store");
      if (!Value || Value->empty()) {
        usage();
        return 2;
      }
      Opts.CertDir = *Value;
    } else if (isFlag("--deadline-cap-ms")) {
      uint64_t N = 0;
      if (!numericFlag("--deadline-cap-ms", UINT32_MAX, &N))
        return 2;
      Opts.DeadlineCapMs = static_cast<uint32_t>(N);
    } else if (isFlag("--prover-steps-cap")) {
      if (!numericFlag("--prover-steps-cap", UINT64_MAX,
                       &Opts.ProverStepsCap))
        return 2;
    } else if (isFlag("--memory-cap-mb")) {
      uint64_t N = 0;
      if (!numericFlag("--memory-cap-mb", uint64_t(1) << 24, &N))
        return 2;
      Opts.MemoryCapBytes = N << 20;
    } else if (Arg == "--isolate-workers") {
      Opts.IsolateWorkers = true;
    } else if (isFlag("--worker-restarts")) {
      uint64_t N = 0;
      if (!numericFlag("--worker-restarts", 1u << 20, &N))
        return 2;
      Opts.Worker.MaxRestarts = static_cast<unsigned>(N);
    } else if (isFlag("--worker-grace-ms")) {
      uint64_t N = 0;
      if (!numericFlag("--worker-grace-ms", 1u << 30, &N))
        return 2;
      Opts.Worker.GraceMs = static_cast<unsigned>(N);
    } else if (isFlag("--quarantine-after")) {
      uint64_t N = 0;
      if (!numericFlag("--quarantine-after", 1u << 20, &N))
        return 2;
      Opts.Worker.QuarantineAfter = static_cast<unsigned>(N);
    } else if (isFlag("--quarantine-file")) {
      std::optional<std::string> Value = flagValue("--quarantine-file");
      if (!Value || Value->empty()) {
        usage();
        return 2;
      }
      Opts.Worker.QuarantineFile = *Value;
    } else if (isFlag("--metrics-json")) {
      std::optional<std::string> Value = flagValue("--metrics-json");
      if (!Value || Value->empty()) {
        usage();
        return 2;
      }
      MetricsPath = *Value;
    } else if (isFlag("--fault-seed")) {
      uint64_t Seed = 0;
      if (!numericFlag("--fault-seed", UINT64_MAX, &Seed))
        return 2;
      FaultSeed = Seed;
    } else if (Arg == "--help" || Arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "unknown argument '%s'\n", Arg.c_str());
      usage();
      return 2;
    }
  }
  if (Opts.SocketPath.empty()) {
    usage();
    return 2;
  }

  std::unique_ptr<support::FaultPlan> Plan;
  if (FaultSeed) {
#if !defined(MCSAFE_FAULT_INJECTION)
    std::fprintf(stderr,
                 "warning: this build has no fault-injection points; "
                 "--fault-seed %llu is a no-op\n",
                 static_cast<unsigned long long>(*FaultSeed));
#endif
    Plan = std::make_unique<support::FaultPlan>(*FaultSeed);
    support::FaultPlan::install(Plan.get());
  }

  support::MetricsRegistry Registry;
  Opts.Metrics = &Registry;
  serve::Server Server(Opts);

  // A peer that disconnects mid-response must surface as EPIPE on the
  // send (which also passes MSG_NOSIGNAL), never kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  GServer = &Server;
  std::signal(SIGINT, onStopSignal);
  std::signal(SIGTERM, onStopSignal);

  std::string Error;
  if (!Server.start(Error)) {
    std::fprintf(stderr, "mcsafe-serve: %s\n", Error.c_str());
    return 2;
  }
  std::printf("mcsafe-serve: listening on %s (%u workers)\n",
              Opts.SocketPath.c_str(), Server.jobs());
  std::fflush(stdout);

  Server.wait();
  GServer = nullptr;
  std::printf("mcsafe-serve: stopped\n");

  if (Plan) {
    support::FaultPlan::install(nullptr);
    Registry.counter("fault/fired").inc(Plan->firedCount());
    Registry.gauge("fault/seed").set(static_cast<int64_t>(Plan->seed()));
  }
  if (!MetricsPath.empty()) {
    std::ofstream Out(MetricsPath);
    if (!Out) {
      std::fprintf(stderr, "cannot write '%s'\n", MetricsPath.c_str());
      return 2;
    }
    Registry.writeJson(Out);
  }
  return 0;
}
